package tensor

import (
	"math"
	"testing"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := NewRNG(10)
	a := randTensor(r, 5, 9)
	SoftmaxRows(a)
	for i := 0; i < 5; i++ {
		var s float64
		for _, v := range a.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxMasking(t *testing.T) {
	row := []float32{1, NegInf, 2, NegInf}
	SoftmaxRow(row)
	if row[1] != 0 || row[3] != 0 {
		t.Fatalf("masked entries got probability: %v", row)
	}
	if math.Abs(float64(row[0]+row[2])-1) > 1e-5 {
		t.Fatalf("unmasked entries don't sum to 1: %v", row)
	}
}

func TestSoftmaxFullyMaskedRowIsZero(t *testing.T) {
	row := []float32{NegInf, NegInf, NegInf}
	SoftmaxRow(row)
	for _, v := range row {
		if v != 0 {
			t.Fatalf("fully masked row = %v", row)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{101, 102, 103}
	SoftmaxRow(a)
	SoftmaxRow(b)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-5 {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestSoftmaxBackwardMatchesNumeric(t *testing.T) {
	x := []float32{0.3, -1.2, 0.7, 2.0}
	dprob := []float32{0.1, -0.4, 0.9, 0.2}
	// Analytic.
	p := append([]float32(nil), x...)
	SoftmaxRow(p)
	dx := make([]float32, len(x))
	SoftmaxBackwardRow(dx, p, dprob)
	// Numeric: d/dx_j Σ_k dprob_k softmax(x)_k.
	const eps = 1e-3
	for j := range x {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[j] += eps
		xm[j] -= eps
		SoftmaxRow(xp)
		SoftmaxRow(xm)
		var fp, fm float64
		for k := range x {
			fp += float64(dprob[k]) * float64(xp[k])
			fm += float64(dprob[k]) * float64(xm[k])
		}
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-float64(dx[j])) > 1e-3 {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", j, num, dx[j])
		}
	}
}

func TestReLUMask(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2, -3, 4}, 5)
	mask := ReLU(a, true)
	wantData := []float32{0, 0, 2, 0, 4}
	wantMask := []float32{0, 0, 1, 0, 1}
	for i := range wantData {
		if a.Data[i] != wantData[i] {
			t.Fatalf("ReLU data[%d] = %v", i, a.Data[i])
		}
		if mask.Data[i] != wantMask[i] {
			t.Fatalf("ReLU mask[%d] = %v", i, mask.Data[i])
		}
	}
}

func TestGeLUGradMatchesNumeric(t *testing.T) {
	xs := []float32{-2, -0.5, 0, 0.5, 2}
	for _, x0 := range xs {
		a := FromSlice([]float32{x0}, 1)
		pre := GeLU(a)
		dy := []float32{1}
		dx := make([]float32, 1)
		GeLUGradRange(dx, dy, pre.Data, 0, 1)

		const eps = 1e-3
		p := FromSlice([]float32{x0 + eps}, 1)
		m := FromSlice([]float32{x0 - eps}, 1)
		GeLU(p)
		GeLU(m)
		num := (float64(p.Data[0]) - float64(m.Data[0])) / (2 * eps)
		if math.Abs(num-float64(dx[0])) > 1e-3 {
			t.Fatalf("gelu'(%v): numeric %v vs analytic %v", x0, num, dx[0])
		}
	}
}

func TestAddRowVector(t *testing.T) {
	a := New(2, 3)
	AddRowVector(a, []float32{1, 2, 3})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != float32(j+1) {
				t.Fatalf("a[%d,%d] = %v", i, j, a.At(i, j))
			}
		}
	}
}

func TestSumMeanMax(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	if Sum(a) != 10 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 2.5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if Max(a) != 4 {
		t.Fatalf("Max = %v", Max(a))
	}
}

func TestArgmaxRow(t *testing.T) {
	a := FromSlice([]float32{1, 5, 3, 9, 2, 4}, 2, 3)
	if ArgmaxRow(a, 0) != 1 || ArgmaxRow(a, 1) != 0 {
		t.Fatal("ArgmaxRow wrong")
	}
}

func TestAddScaledInto(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AddScaledInto(a, b, 0.5)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("axpy wrong: %v", a.Data)
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float32{-5, 0.5, 5}, 3)
	Clamp(a, -1, 1)
	if a.Data[0] != -1 || a.Data[1] != 0.5 || a.Data[2] != 1 {
		t.Fatalf("Clamp wrong: %v", a.Data)
	}
}

func TestL2Norm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if math.Abs(L2Norm(a)-5) > 1e-9 {
		t.Fatalf("L2Norm = %v", L2Norm(a))
	}
}

func TestMulInto(t *testing.T) {
	a := FromSlice([]float32{2, 3}, 2)
	b := FromSlice([]float32{4, 5}, 2)
	MulInto(a, b)
	if a.Data[0] != 8 || a.Data[1] != 15 {
		t.Fatalf("MulInto wrong: %v", a.Data)
	}
}
