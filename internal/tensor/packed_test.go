package tensor

import (
	"math"
	"testing"

	"longexposure/internal/half"
)

// TestPackF16ExactRoundTrip pins the acceptance contract: weights already
// representable in fp16 survive f32→f16→f32 bit-identically, so a base whose
// checkpoint was trained in fp16 serves the exact same numbers packed.
func TestPackF16ExactRoundTrip(t *testing.T) {
	w := New(16, 8)
	NewRNG(7).FillNormal(w, 1)
	for i := range w.Data {
		w.Data[i] = half.RoundTrip(w.Data[i]) // snap to fp16 grid
	}
	deq := PackF16(w).Dequant()
	for i := range w.Data {
		if math.Float32bits(deq.Data[i]) != math.Float32bits(w.Data[i]) {
			t.Fatalf("element %d: %x -> %x", i, math.Float32bits(w.Data[i]), math.Float32bits(deq.Data[i]))
		}
	}
}

// fillRand fills a tensor with unit normals.
func fillRand(t *Tensor, seed uint64) {
	NewRNG(seed).FillNormal(t, 1)
}

// TestGemmPackedBitIdentical: the packed kernels must produce bit-for-bit
// the result of the f32 cores run over the dequantized matrix — the packed
// path changes storage, never arithmetic. Shapes straddle the panel edges
// (k > gemmKC, n not a multiple of gemmNC or gemmNR).
func TestGemmPackedBitIdentical(t *testing.T) {
	const m, k, n = 9, 300, 70
	a := New(m, k)
	w := New(k, n)
	fillRand(a, 1)
	fillRand(w, 2)
	// Exact zeros in a exercise the zero-skip dispatch.
	for i := 0; i < len(a.Data); i += 17 {
		a.Data[i] = 0
	}

	for _, tc := range []struct {
		name string
		p    *PackedWeights
	}{
		{"f16", PackF16(w)},
		{"int8", PackInt8(w, ScalePerCol)},
	} {
		want := MatMul(a, tc.p.Dequant())
		got := New(m, n)
		MatMulPackedInto(got, a, tc.p)
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%s: element %d: got %g, want %g", tc.name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmTBPacked pins the TB contract: widening B's rows quad-wise over
// the full contraction makes a·Pᵀ bit-identical to the f32 TB core over the
// dequantized matrix for k ≤ 2048 (same stripe width, one accumulator per
// output element, k ascending).
func TestGemmTBPacked(t *testing.T) {
	const m, k, n = 5, 300, 70
	a := New(m, k)
	w := New(n, k) // logical B: [n,k], output j indexes rows
	fillRand(a, 3)
	fillRand(w, 4)

	for _, tc := range []struct {
		name string
		p    *PackedWeights
	}{
		{"f16", PackF16(w)},
		{"int8", PackInt8(w, ScalePerRow)},
	} {
		want := New(m, n)
		MatMulTBInto(want, a, tc.p.Dequant())
		got := New(m, n)
		MatMulTBPackedInto(got, a, tc.p)
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%s: element %d: got %g, want %g", tc.name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmPackedTolerance is the numeric-tolerance golden test against the
// f32 path proper: quantization noise through a k=256 contraction stays
// within the storage format's error budget (fp16: 2⁻¹¹ per weight; int8:
// scale/2 per weight), both well under the bounds README documents.
func TestGemmPackedTolerance(t *testing.T) {
	const m, k, n = 4, 256, 64
	a := New(m, k)
	w := New(k, n)
	fillRand(a, 5)
	fillRand(w, 6)
	exact := MatMul(a, w)

	check := func(name string, p *PackedWeights, relTol float64) {
		got := New(m, n)
		MatMulPackedInto(got, a, p)
		var ref float64
		for _, v := range exact.Data {
			if av := math.Abs(float64(v)); av > ref {
				ref = av
			}
		}
		for i := range exact.Data {
			if d := math.Abs(float64(got.Data[i] - exact.Data[i])); d > relTol*ref {
				t.Fatalf("%s: element %d off by %g (ref %g, tol %g)", name, i, d, ref, relTol)
			}
		}
	}
	check("f16", PackF16(w), 1e-2)
	check("int8", PackInt8(w, ScalePerCol), 5e-2)
}

// TestPackInt8 pins the quantizer: per-channel absmax scaling, at most half
// a quantization step of error per element, exact zeros for zero channels.
func TestPackInt8(t *testing.T) {
	w := New(6, 5)
	fillRand(w, 8)
	for r := 0; r < 6; r++ {
		w.Data[r*5+3] = 0 // column 3 all zero
	}
	p := PackInt8(w, ScalePerCol)
	if p.Scale[3] != 0 {
		t.Fatalf("zero channel scale = %g, want 0", p.Scale[3])
	}
	deq := p.Dequant()
	for r := 0; r < 6; r++ {
		for c := 0; c < 5; c++ {
			d := math.Abs(float64(deq.Data[r*5+c] - w.Data[r*5+c]))
			if d > float64(p.Scale[c])/2+1e-9 {
				t.Fatalf("(%d,%d): dequant off by %g, scale %g", r, c, d, p.Scale[c])
			}
		}
	}
	if got := p.Bytes(); got != 6*5+4*5 {
		t.Fatalf("int8 Bytes = %d, want %d", got, 6*5+4*5)
	}
	if got := PackF16(w).Bytes(); got != 2*6*5 {
		t.Fatalf("f16 Bytes = %d, want %d", got, 2*6*5)
	}
}

// TestPackedAxisGuard: using an int8 matrix with the wrong scale orientation
// must panic rather than silently dequantize with the wrong scales.
func TestPackedAxisGuard(t *testing.T) {
	w := New(8, 8)
	fillRand(w, 9)
	p := PackInt8(w, ScalePerRow)
	a := New(2, 8)
	c := New(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulPackedInto accepted a ScalePerRow matrix")
		}
	}()
	MatMulPackedInto(c, a, p)
}
