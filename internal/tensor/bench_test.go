package tensor

import (
	"fmt"
	"testing"

	"longexposure/internal/parallel"
)

// Kernel microbenchmarks, including worker-count scaling — the CPU analogue
// of GPU occupancy tuning for the parallel GEMM cores.

func benchMatMul(b *testing.B, n int) {
	r := NewRNG(1)
	a := New(n, n)
	c := New(n, n)
	r.FillNormal(a, 1)
	r.FillNormal(c, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
	b.SetBytes(int64(8 * n * n))
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul128(b *testing.B) { benchMatMul(b, 128) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }

func BenchmarkMatMulWorkerScaling(b *testing.B) {
	n := 192
	r := NewRNG(2)
	x := New(n, n)
	y := New(n, n)
	r.FillNormal(x, 1)
	r.FillNormal(y, 1)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			old := parallel.SetWorkers(w)
			defer parallel.SetWorkers(old)
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	r := NewRNG(3)
	base := New(256, 256)
	r.FillNormal(base, 1)
	scratch := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(base)
		SoftmaxRows(scratch)
	}
}

func BenchmarkGeLU(b *testing.B) {
	r := NewRNG(4)
	base := New(64, 1024)
	r.FillNormal(base, 1)
	scratch := New(64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(base)
		GeLU(scratch)
	}
}
