package tensor

// Register-blocked, panel-tiled GEMM cores. These are the hot paths behind
// GemmRange/GemmTBRange/GemmTARange; the straight i-k-j seed cores live in
// matmul.go as GemmRangeNaive et al. and remain the correctness references.
//
// The structure is a scaled-down BLIS: the inner dimension is cut into
// panels of gemmKC rows and the output columns into stripes of gemmNC, and
// the B stripe is packed *transposed* into column streams so one panel
// (gemmKC×gemmNC float32 = 32 KiB) sits in L1d and is swept by every output
// row of the range. The micro-kernel is a 4×-unrolled j-loop: four C values
// held in registers across the whole k-panel, four contiguous packed
// streams, one a-element load feeding four multiply-adds. That removes both
// the per-k C load/store traffic of the naive core and all inner-loop
// bounds checks (each stream has the same length as the a slice, the
// pattern Go's prove pass eliminates). Rows are scanned for exact zeros to
// choose between a branch-free kernel and one that keeps the naive core's
// zero-product skip (see gemmMicroRowDispatch).
//
// Numerical contract: for every output element the sequence of float32
// additions is exactly the sequence the naive core performs (k ascending,
// zero products skipped, C read-modify-written between panels — loads and
// stores are exact). The tiled cores are therefore bit-identical to the
// naive cores, not merely close; TestGemmTiledBitIdentical pins this.

const (
	gemmNR = 4   // register tile width: C columns held in registers
	gemmKC = 256 // B-panel depth (rows of B packed per stripe)
	gemmNC = 32  // B-panel width; gemmKC*gemmNC*4B = 32 KiB ≈ L1d
)

// gemmTiledWorthIt reports whether the panel machinery pays for itself.
// Skinny products (LoRA ranks, tiny blocks) stay on the naive cores.
func gemmTiledWorthIt(k, n int) bool { return k >= 8 && n >= gemmNR }

// gemmRangeTiled computes c[i,:] += a[i,:]·b for rows i in [loM, hiM),
// a: [m,k], b: [k,n], c: [m,n] row-major. Bit-identical to GemmRangeNaive.
func gemmRangeTiled(c, a, b []float32, k, n, loM, hiM int) {
	var packed [gemmKC * gemmNC]float32
	for k0 := 0; k0 < k; k0 += gemmKC {
		kc := min(gemmKC, k-k0)
		for j0 := 0; j0 < n; j0 += gemmNC {
			nc := min(gemmNC, n-j0)
			packPanelT(packed[:], b, n, k0, j0, kc, nc)
			for i := loM; i < hiM; i++ {
				gemmMicroRowDispatch(c[i*n+j0:i*n+j0+nc], a[i*k+k0:i*k+k0+kc], packed[:nc*kc])
			}
		}
	}
}

// gemmMicroRowDispatch picks the micro-kernel per row chunk: rows with no
// zeros (the common dense case) take the branch-free kernel — trivially
// bit-identical since the skip never fires on them — while rows carrying
// exact zeros (ReLU-masked activations, the shadowy-sparsity case) keep the
// naive core's zero-product skip, for speed and for the skip's exact
// semantics. The scan costs len(ai) compares amortized over the stripe.
func gemmMicroRowDispatch(ci, ai, bt []float32) {
	for _, v := range ai {
		if v == 0 {
			gemmMicroRow(ci, ai, bt)
			return
		}
	}
	gemmMicroRowDense(ci, ai, bt)
}

// packPanelT copies b[k0:k0+kc, j0:j0+nc] transposed into packed: column
// j0+j of the stripe becomes the contiguous stream packed[j*kc : (j+1)*kc].
// Reads are sequential row segments; the 32 KiB write region stays in L1.
func packPanelT(packed, b []float32, n, k0, j0, kc, nc int) {
	for kk := 0; kk < kc; kk++ {
		src := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+nc]
		for j, v := range src {
			packed[j*kc+kk] = v
		}
	}
}

// gemmMicroRow accumulates one C row stripe against the packed panel:
// ci[j] += dot(ai, bt column j) for every j, four columns at a time with
// the four C values in registers, initialized from C so the addition order
// matches the naive core exactly.
func gemmMicroRow(ci, ai, bt []float32) {
	kc := len(ai)
	nc := len(ci)
	j := 0
	for ; j+gemmNR <= nc; j += gemmNR {
		b0 := bt[j*kc : (j+1)*kc]
		b1 := bt[(j+1)*kc : (j+2)*kc]
		b2 := bt[(j+2)*kc : (j+3)*kc]
		b3 := bt[(j+3)*kc : (j+4)*kc]
		c0, c1, c2, c3 := ci[j], ci[j+1], ci[j+2], ci[j+3]
		for kk, aik := range ai {
			if aik == 0 {
				continue
			}
			c0 += aik * b0[kk]
			c1 += aik * b1[kk]
			c2 += aik * b2[kk]
			c3 += aik * b3[kk]
		}
		ci[j], ci[j+1], ci[j+2], ci[j+3] = c0, c1, c2, c3
	}
	for ; j < nc; j++ {
		bj := bt[j*kc : (j+1)*kc]
		c0 := ci[j]
		for kk, aik := range ai {
			if aik == 0 {
				continue
			}
			c0 += aik * bj[kk]
		}
		ci[j] = c0
	}
}

// gemmMicroRowDense is gemmMicroRow without the zero-product skip — only
// valid when ai contains no zeros, where the two are bit-identical.
func gemmMicroRowDense(ci, ai, bt []float32) {
	kc := len(ai)
	nc := len(ci)
	j := 0
	for ; j+gemmNR <= nc; j += gemmNR {
		b0 := bt[j*kc : (j+1)*kc]
		b1 := bt[(j+1)*kc : (j+2)*kc]
		b2 := bt[(j+2)*kc : (j+3)*kc]
		b3 := bt[(j+3)*kc : (j+4)*kc]
		c0, c1, c2, c3 := ci[j], ci[j+1], ci[j+2], ci[j+3]
		for kk, aik := range ai {
			c0 += aik * b0[kk]
			c1 += aik * b1[kk]
			c2 += aik * b2[kk]
			c3 += aik * b3[kk]
		}
		ci[j], ci[j+1], ci[j+2], ci[j+3] = c0, c1, c2, c3
	}
	for ; j < nc; j++ {
		bj := bt[j*kc : (j+1)*kc]
		c0 := ci[j]
		for kk, aik := range ai {
			c0 += aik * bj[kk]
		}
		ci[j] = c0
	}
}

// gemmTBRangeTiled computes c[i,j] += dot(a[i,:], b[j,:]) (c += a·bᵀ) for
// rows i in [loM, hiM), cache-blocked over rows of b so a stripe of B rows
// stays resident while every output row sweeps it, with 4 independent dot
// accumulators sharing each load of a[i,:]. B's rows are already the dot
// streams, so no packing is needed. Bit-identical to GemmTBRangeNaive
// (one accumulator per output element, k ascending).
func gemmTBRangeTiled(c, a, b []float32, k, n, loM, hiM int) {
	// Stripe of B rows sized to L1d: jb rows of k float32 ≤ 32 KiB.
	jb := (32 * 1024 / 4) / k
	jb -= jb % gemmNR
	if jb < gemmNR {
		jb = gemmNR
	}
	for j0 := 0; j0 < n; j0 += jb {
		je := min(j0+jb, n)
		jFull := je - (je-j0)%gemmNR
		for i := loM; i < hiM; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := j0; j < jFull; j += gemmNR {
				b0 := b[j*k : (j+1)*k]
				b1 := b[(j+1)*k : (j+2)*k]
				b2 := b[(j+2)*k : (j+3)*k]
				b3 := b[(j+3)*k : (j+4)*k]
				var s0, s1, s2, s3 float32
				for kk, av := range ai {
					s0 += av * b0[kk]
					s1 += av * b1[kk]
					s2 += av * b2[kk]
					s3 += av * b3[kk]
				}
				ci[j] += s0
				ci[j+1] += s1
				ci[j+2] += s2
				ci[j+3] += s3
			}
			for j := jFull; j < je; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for kk, av := range ai {
					s += av * bj[kk]
				}
				ci[j] += s
			}
		}
	}
}

// gemmTARangeTiled computes c[i,:] += Σ_k a[k,i]·b[k,:] (c += aᵀ·b) for
// rows i in [loM, hiM), a: [kDim,m], b: [kDim,n]. Same panel scheme as
// gemmRangeTiled; the strided column a[:,i] is gathered into a small
// buffer once per (panel, row) and amortized over the packed stripe.
// Bit-identical to GemmTARangeNaive.
func gemmTARangeTiled(c, a, b []float32, kDim, m, n, loM, hiM int) {
	var packed [gemmKC * gemmNC]float32
	var acol [gemmKC]float32
	for k0 := 0; k0 < kDim; k0 += gemmKC {
		kc := min(gemmKC, kDim-k0)
		for j0 := 0; j0 < n; j0 += gemmNC {
			nc := min(gemmNC, n-j0)
			packPanelT(packed[:], b, n, k0, j0, kc, nc)
			for i := loM; i < hiM; i++ {
				for kk := 0; kk < kc; kk++ {
					acol[kk] = a[(k0+kk)*m+i]
				}
				gemmMicroRowDispatch(c[i*n+j0:i*n+j0+nc], acol[:kc], packed[:nc*kc])
			}
		}
	}
}
