package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.Rank() != 3 || a.Dim(1) != 3 {
		t.Fatalf("shape bookkeeping wrong: %v len=%d", a.Shape(), a.Len())
	}
	s := New() // scalar
	if s.Len() != 1 {
		t.Fatalf("scalar tensor Len = %d", s.Len())
	}
}

func TestAtSetRowMajorLayout(t *testing.T) {
	a := New(2, 3)
	a.Set(5, 1, 2)
	if a.Data[1*3+2] != 5 {
		t.Fatal("Set did not write row-major offset")
	}
	if a.At(1, 2) != 5 {
		t.Fatal("At did not read back")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesStorage(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Data[0] = 7
	if a.Data[0] != 7 {
		t.Fatal("Reshape did not share storage")
	}
	c := a.Reshape(4, -1)
	if c.Dim(1) != 3 {
		t.Fatalf("inferred dim = %d, want 3", c.Dim(1))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := New(3)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowView(t *testing.T) {
	a := New(3, 4)
	a.Set(2, 1, 0)
	r := a.Row(1)
	if r[0] != 2 {
		t.Fatal("Row read wrong data")
	}
	r[1] = 8
	if a.At(1, 1) != 8 {
		t.Fatal("Row is not a view")
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	if a.At(1, 1) != 4 {
		t.Fatal("FromSlice wrong layout")
	}
	d[0] = 9
	if a.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestMaxAbsDiffAndHasNaN(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.5, 3}, 3)
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if a.HasNaN() {
		t.Fatal("false NaN")
	}
	a.Data[1] = float32(NegInf)
	if !a.HasNaN() {
		t.Fatal("missed Inf")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(7)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(123)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	varr := sum2/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if varr < 0.9 || varr > 1.1 {
		t.Fatalf("normal variance = %v", varr)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			r.Uint64()
		}
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(1)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}
