package tensor

import (
	"fmt"
	"unsafe"
)

// Arena is a size-bucketed workspace allocator for the training hot path.
// One arena backs one training step of one worker: layers Get step-lived
// buffers during forward/backward, and the step owner calls Release once
// the optimizer update is done, recycling every buffer for the next step.
// After a one-step warmup the steady state performs no heap allocation —
// the reuse discipline that makes sparsity pay off in wall-clock time
// instead of being eaten by GC churn.
//
// Ownership rules (see README "Memory model"):
//
//   - Whoever drives the step owns the arena and is the only caller of
//     Release. Layers Get; they never Release.
//   - Buffers returned by Get/Floats/... are valid until Release. Holding
//     a reference across Release reads recycled memory — saved-for-backward
//     state is safe because Backward runs before the step's Release.
//   - An arena is single-owner: all Get/Release calls must come from one
//     goroutine (parallel kernels may *fill* a buffer concurrently after it
//     was handed out). Concurrent workers each own a private arena.
//   - A nil *Arena is the allocating fallback everywhere: every helper
//     (NewIn, FloatsIn, MatMulIn, ...) falls back to plain make/New with
//     bit-identical results, so the workspace path is verifiable layer by
//     layer against the allocating path.
//
// Buffers are bucketed by capacity class (next power of two), so reuse
// works across the mixed shapes of one step, and Get zeroes the returned
// prefix — an arena tensor is indistinguishable from a freshly allocated
// one. GetDirty/FloatsDirty skip the zeroing for destinations that are
// fully overwritten.
type Arena struct {
	f32  bucketPool[float32]
	f64  bucketPool[float64]
	ints bucketPool[int]

	freeT []*Tensor // recycled tensor wrappers
	usedT []*Tensor

	// state holds per-key scratch that survives Release — layers use it
	// (keyed by themselves) to keep saved-for-backward containers off
	// their structs, so one layer invoked with two arenas never shares
	// per-invocation state (the probsDense/probsSparse hazard).
	state map[any]any

	gets       int64 // buffers handed out since construction
	misses     int64 // Gets that had to allocate fresh storage
	allocBytes int64 // bytes of fresh storage those misses allocated
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// bucketPool is one element type's free lists, keyed by capacity class.
type bucketPool[E any] struct {
	free map[int][][]E
	used []pooled[E]
}

type pooled[E any] struct {
	class int
	s     []E
}

// arenaFloorBytes is the smallest bucket, measured in bytes so pools of
// different element widths bucket equivalently: tiny buffers share buckets
// without a wide-element pool (float64, int) over-allocating its floor or a
// narrow-element pool (fp16, int8) splitting it into sub-cacheline classes.
const arenaFloorBytes = 256

// sizeClass rounds n up to the bucket capacity: the next power of two, with
// the byte-based floor above converted to whole elements of the pool's
// width. elemBytes must be a power of two (true of every machine type).
func sizeClass(n, elemBytes int) int {
	c := arenaFloorBytes / elemBytes
	if c < 1 {
		c = 1
	}
	for c < n {
		c <<= 1
	}
	return c
}

func (p *bucketPool[E]) get(n int) (s []E, freshBytes int64) {
	var e E
	elem := int(unsafe.Sizeof(e))
	class := sizeClass(n, elem)
	if fl := p.free[class]; len(fl) > 0 {
		s = fl[len(fl)-1]
		p.free[class] = fl[:len(fl)-1]
	} else {
		s = make([]E, class)
		freshBytes = int64(class * elem)
	}
	p.used = append(p.used, pooled[E]{class, s})
	return s[:n], freshBytes
}

func (p *bucketPool[E]) release() {
	if len(p.used) == 0 {
		return
	}
	if p.free == nil {
		p.free = make(map[int][][]E)
	}
	for _, u := range p.used {
		p.free[u.class] = append(p.free[u.class], u.s[:u.class])
	}
	p.used = p.used[:0]
}

// Floats returns a zeroed []float32 of length n, recycled when possible.
func (a *Arena) Floats(n int) []float32 {
	s := a.FloatsDirty(n)
	clear(s)
	return s
}

// FloatsDirty is Floats without the zeroing — for buffers every element of
// which the caller overwrites before reading.
func (a *Arena) FloatsDirty(n int) []float32 {
	s, fresh := a.f32.get(n)
	a.count(fresh)
	return s
}

// Float64s returns a zeroed []float64 of length n.
func (a *Arena) Float64s(n int) []float64 {
	s, fresh := a.f64.get(n)
	a.count(fresh)
	clear(s)
	return s
}

// Ints returns a zeroed []int of length n.
func (a *Arena) Ints(n int) []int {
	s, fresh := a.ints.get(n)
	a.count(fresh)
	clear(s)
	return s
}

// Get returns a zeroed tensor of the given shape whose storage and wrapper
// are recycled across Release — the workspace equivalent of New.
func (a *Arena) Get(shape ...int) *Tensor {
	return a.wrap(a.Floats(checkedLen(shape)), shape)
}

// GetDirty is Get without the zeroing — only for tensors the caller fully
// overwrites before reading.
func (a *Arena) GetDirty(shape ...int) *Tensor {
	return a.wrap(a.FloatsDirty(checkedLen(shape)), shape)
}

// checkedLen validates dims and returns the element count. The panic
// message deliberately omits the shape slice: referencing it from the cold
// path would make every variadic Get call heap-allocate its shape.
func checkedLen(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panicNegativeDim(d)
		}
		n *= d
	}
	return n
}

func (a *Arena) wrap(data []float32, shape []int) *Tensor {
	var t *Tensor
	if k := len(a.freeT); k > 0 {
		t = a.freeT[k-1]
		a.freeT = a.freeT[:k-1]
	} else {
		t = &Tensor{}
	}
	t.shape = append(t.shape[:0], shape...)
	t.Data = data
	a.usedT = append(a.usedT, t)
	return t
}

// Release recycles every buffer and tensor handed out since the previous
// Release. Per-key state (StateFor) survives. Safe on a nil arena.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	a.f32.release()
	a.f64.release()
	a.ints.release()
	for _, t := range a.usedT {
		t.Data = nil
		t.shape = t.shape[:0]
		a.freeT = append(a.freeT, t)
	}
	a.usedT = a.usedT[:0]
}

// StateFor returns the per-key scratch stored on the arena, creating it
// with mk on first use. Unlike Get buffers, state survives Release: layers
// use it for saved-for-backward containers whose slices amortize to zero
// allocations across steps. key is typically the layer pointer itself.
func (a *Arena) StateFor(key any, mk func() any) any {
	if a.state == nil {
		a.state = make(map[any]any)
	}
	v, ok := a.state[key]
	if !ok {
		v = mk()
		a.state[key] = v
	}
	return v
}

func (a *Arena) count(freshBytes int64) {
	a.gets++
	if freshBytes > 0 {
		a.misses++
		a.allocBytes += freshBytes
	}
}

// Gets reports how many buffers the arena has handed out in total.
func (a *Arena) Gets() int64 { return a.gets }

// Misses reports how many Gets allocated fresh storage — constant across
// steps once the arena is warm.
func (a *Arena) Misses() int64 { return a.misses }

// AllocBytes reports the bytes of fresh backing storage the arena has
// allocated since construction — its resident workspace footprint (pooled
// buffers are never freed, so this is also the high-water mark).
func (a *Arena) AllocBytes() int64 { return a.allocBytes }

func panicNegativeDim(d int) {
	panic(fmt.Sprintf("tensor: negative dimension %d in workspace shape", d))
}

// The nil-safe helpers below are the workspace seam every layer uses: with
// a real arena they recycle, with nil they allocate exactly like the seed
// code, keeping both paths bit-identical and diffable.

// NewIn returns a zeroed tensor from ws, or a fresh allocation when ws is
// nil. The nil branch deliberately does not delegate to New: New's panic
// message references the shape slice, and routing NewIn's variadic through
// it would make every NewIn call heap-allocate its shape — including on
// the workspace path (escape analysis is path-insensitive). The allocation
// behavior is identical to New's.
func NewIn(ws *Arena, shape ...int) *Tensor {
	if ws == nil {
		n := checkedLen(shape)
		return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
	}
	return ws.Get(shape...)
}

// WrapIn returns a tensor view over existing data whose wrapper (struct
// and shape slice) is recycled from ws across Release cycles — the
// zero-alloc version of FromSlice for workspace-scoped views (nil ws
// allocates a fresh wrapper). The panic message deliberately omits the
// shape slice: formatting it would make the variadic escape and cost a
// heap allocation on every call (see NewIn).
func WrapIn(ws *Arena, data []float32, shape ...int) *Tensor {
	if n := checkedLen(shape); n != len(data) {
		panic(fmt.Sprintf("tensor: WrapIn shape needs %d elements, got %d", n, len(data)))
	}
	if ws == nil {
		return &Tensor{shape: append([]int(nil), shape...), Data: data}
	}
	return ws.wrap(data, shape)
}

// FloatsIn returns a zeroed []float32 from ws, or a fresh make when nil.
func FloatsIn(ws *Arena, n int) []float32 {
	if ws == nil {
		return make([]float32, n)
	}
	return ws.Floats(n)
}

// FloatsDirtyIn is FloatsIn without zeroing on the arena path (a fresh make
// is zeroed either way).
func FloatsDirtyIn(ws *Arena, n int) []float32 {
	if ws == nil {
		return make([]float32, n)
	}
	return ws.FloatsDirty(n)
}

// Float64sIn returns a zeroed []float64 from ws, or a fresh make when nil.
func Float64sIn(ws *Arena, n int) []float64 {
	if ws == nil {
		return make([]float64, n)
	}
	return ws.Float64s(n)
}

// IntsIn returns a zeroed []int from ws, or a fresh make when nil.
func IntsIn(ws *Arena, n int) []int {
	if ws == nil {
		return make([]int, n)
	}
	return ws.Ints(n)
}

// CloneIn returns a copy of t backed by ws (or a plain Clone when nil).
func CloneIn(ws *Arena, t *Tensor) *Tensor {
	if ws == nil {
		return t.Clone()
	}
	c := ws.GetDirty(t.shape...)
	copy(c.Data, t.Data)
	return c
}
