package trace

import (
	"encoding/hex"
	"sort"
	"time"
)

// SpanRecord is one finished span rendered for JSON (the /debug/traces
// payload). Children are sorted by start time.
type SpanRecord struct {
	TraceID    string         `json:"trace_id"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_span_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNs int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanRecord  `json:"children,omitempty"`
}

// TraceRecord is one reconstructed trace: every retained span of a trace
// id assembled into trees. Spans whose parent was overwritten in the ring
// (or lives in another process) surface as additional roots — a partial
// tree is still a useful timeline.
type TraceRecord struct {
	TraceID    string        `json:"trace_id"`
	Start      time.Time     `json:"start"`
	DurationNs int64         `json:"duration_ns"` // earliest start to latest end
	Spans      int           `json:"spans"`
	Roots      []*SpanRecord `json:"roots"`
}

// readEntry snapshots one ring slot into out under its sequence lock,
// reporting false for slots that are empty, mid-write, or overwritten
// during the copy. out is a pointer so the atomic-bearing entry is never
// copied by value.
func readEntry(e, out *entry) bool {
	for tries := 0; tries < 3; tries++ {
		s1 := e.seq.Load()
		if s1 == 0 || s1&1 == 1 {
			return false
		}
		copyEntry(out, e, e.dur)
		if e.seq.Load() == s1 {
			return true
		}
	}
	return false
}

func (e *entry) render() *SpanRecord {
	r := &SpanRecord{
		TraceID:    e.tid.String(),
		SpanID:     e.sid.String(),
		Name:       e.name,
		Start:      time.Unix(0, e.start),
		DurationNs: e.dur,
	}
	if e.parent.Valid() {
		r.ParentID = e.parent.String()
	}
	if e.nattrs > 0 {
		r.Attrs = make(map[string]any, e.nattrs)
		for _, a := range e.attrs[:e.nattrs] {
			r.Attrs[a.Key] = a.Value()
		}
	}
	return r
}

// Snapshot reconstructs the most recent traces (up to limit; <= 0 means
// 20) and returns the retained slowest spans, slowest first. Reading is
// lock-free against writers; entries being overwritten mid-read are
// skipped.
func (t *Tracer) Snapshot(limit int) (recent []TraceRecord, slowest []*SpanRecord) {
	if t == nil {
		return nil, nil
	}
	if limit <= 0 {
		limit = 20
	}

	byTrace := map[TraceID][]*SpanRecord{}
	var e entry
	for i := range t.ring {
		if !readEntry(&t.ring[i], &e) {
			continue
		}
		byTrace[e.tid] = append(byTrace[e.tid], e.render())
	}
	for tid, spans := range byTrace {
		recent = append(recent, assemble(tid, spans))
	}
	// Most recent activity first, bounded.
	sort.Slice(recent, func(i, j int) bool { return recent[i].Start.After(recent[j].Start) })
	if len(recent) > limit {
		recent = recent[:limit]
	}

	t.slowMu.Lock()
	for i := range t.slow {
		slowest = append(slowest, t.slow[i].render())
	}
	t.slowMu.Unlock()
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].DurationNs > slowest[j].DurationNs })
	return recent, slowest
}

// SnapshotTrace reconstructs the single trace with the given hex id (as
// reported in X-Trace-Id headers and log records) from whatever spans of
// it the ring still retains. ok is false for a malformed id or when no
// retained span carries it — the trace may simply have been overwritten.
func (t *Tracer) SnapshotTrace(id string) (TraceRecord, bool) {
	if t == nil || len(id) != 32 {
		return TraceRecord{}, false
	}
	var tid TraceID
	if _, err := hex.Decode(tid[:], []byte(id)); err != nil {
		return TraceRecord{}, false
	}
	var spans []*SpanRecord
	var e entry
	for i := range t.ring {
		if !readEntry(&t.ring[i], &e) || e.tid != tid {
			continue
		}
		spans = append(spans, e.render())
	}
	if len(spans) == 0 {
		return TraceRecord{}, false
	}
	return assemble(tid, spans), true
}

// assemble links a trace's spans into trees by parent id.
func assemble(tid TraceID, spans []*SpanRecord) TraceRecord {
	byID := make(map[string]*SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	tr := TraceRecord{TraceID: tid.String(), Spans: len(spans)}
	var start, end time.Time
	for _, s := range spans {
		if start.IsZero() || s.Start.Before(start) {
			start = s.Start
		}
		if e := s.Start.Add(time.Duration(s.DurationNs)); end.IsZero() || e.After(end) {
			end = e
		}
		if p, ok := byID[s.ParentID]; ok && p != s {
			p.Children = append(p.Children, s)
		} else {
			tr.Roots = append(tr.Roots, s)
		}
	}
	for _, s := range spans {
		sort.Slice(s.Children, func(i, j int) bool { return s.Children[i].Start.Before(s.Children[j].Start) })
	}
	sort.Slice(tr.Roots, func(i, j int) bool { return tr.Roots[i].Start.Before(tr.Roots[j].Start) })
	tr.Start = start
	if !start.IsZero() {
		tr.DurationNs = end.Sub(start).Nanoseconds()
	}
	return tr
}
