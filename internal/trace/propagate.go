package trace

import (
	"context"
	"encoding/hex"
	"strings"
)

// SpanContext is the propagated identity of a span: what crosses process
// boundaries in a W3C traceparent header, and what child spans inherit.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
	// Remote marks a context parsed off the wire: StartRoot honors its
	// sampled flag verbatim instead of applying the local sample ratio.
	Remote bool
}

// Traceparent renders the W3C trace-context header value
// (version 00): "00-<trace-id>-<span-id>-<flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// non-ff version (per spec, unknown versions parse as version 00) and
// rejects malformed ids, all-zero ids, and wrong field sizes.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) < 2 {
		return SpanContext{}, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(strings.ToLower(parts[0]))); err != nil {
		return SpanContext{}, false
	}
	if version[0] == 0xff {
		return SpanContext{}, false // forbidden version
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(strings.ToLower(parts[1]))); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(strings.ToLower(parts[2]))); err != nil {
		return SpanContext{}, false
	}
	if !sc.TraceID.Valid() || !sc.SpanID.Valid() {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(strings.ToLower(parts[3][:2]))); err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	sc.Remote = true
	return sc, true
}

type ctxKey struct{}

// ContextWith returns ctx carrying the span. Storing a nil span is fine —
// FromContext returns nil either way, so unsampled requests flow through
// the same plumbing.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
