package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestTracer(ratio float64) *Tracer {
	return New(Config{SampleRatio: ratio, Capacity: 256, SlowestN: 4, Seed: 42})
}

func TestSamplingRatio(t *testing.T) {
	if sp := newTestTracer(0).StartRoot("r", SpanContext{}); sp != nil {
		t.Fatal("ratio 0 sampled a trace")
	}
	if sp := newTestTracer(1).StartRoot("r", SpanContext{}); sp == nil {
		t.Fatal("ratio 1 dropped a trace")
	} else {
		sp.Finish()
	}
	// A fractional ratio should land near its target over many draws.
	tr := newTestTracer(0.25)
	hits := 0
	for i := 0; i < 4000; i++ {
		if sp := tr.StartRoot("r", SpanContext{}); sp != nil {
			hits++
			sp.Finish()
		}
	}
	if hits < 700 || hits > 1300 {
		t.Fatalf("ratio 0.25 sampled %d/4000", hits)
	}
}

func TestRemoteContextOverridesRatio(t *testing.T) {
	tr := newTestTracer(0) // local sampling off
	remote := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}, Sampled: true, Remote: true}
	sp := tr.StartRoot("r", remote)
	if sp == nil {
		t.Fatal("sampled remote context was dropped despite flag")
	}
	if sp.TraceID() != remote.TraceID {
		t.Fatalf("trace id %s not continued from remote", sp.TraceID())
	}
	sp.Finish()

	tr2 := newTestTracer(1) // local sampling on
	remote.Sampled = false
	if sp := tr2.StartRoot("r", remote); sp != nil {
		t.Fatal("unsampled remote context was recorded")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("r", SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every operation on a nil span must be a no-op, not a panic.
	sp.SetInt("i", 1)
	sp.SetStr("s", "v")
	sp.SetFloat("f", 1.5)
	sp.SetBool("b", true)
	sp.ChildAt("c", time.Now(), time.Now())
	child := sp.StartChild("c")
	if child != nil {
		t.Fatal("child of nil span is not nil")
	}
	child.Finish()
	sp.Finish()
	if sp.Sampled() || sp.TraceID().Valid() || sp.SpanID().Valid() {
		t.Fatal("nil span reports identity")
	}
	if rec, slow := tr.Snapshot(10); rec != nil || slow != nil {
		t.Fatal("nil tracer snapshot non-empty")
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := newTestTracer(1)
	root := tr.StartRoot("http.request", SpanContext{})
	root.SetStr("route", "POST /v1/generate")
	admit := root.StartChild("limit.acquire")
	admit.SetStr("outcome", "admitted")
	admit.Finish()
	seq := root.StartChild("infer.sequence")
	for i := 0; i < 3; i++ {
		st := seq.StartChild("decode_step")
		st.SetInt("step", int64(i))
		st.Finish()
	}
	seq.SetInt("tokens", 3)
	seq.Finish()
	root.Finish()

	recent, _ := tr.Snapshot(10)
	if len(recent) != 1 {
		t.Fatalf("got %d traces, want 1", len(recent))
	}
	trace := recent[0]
	if trace.Spans != 6 {
		t.Fatalf("trace has %d spans, want 6", trace.Spans)
	}
	if len(trace.Roots) != 1 || trace.Roots[0].Name != "http.request" {
		t.Fatalf("unexpected roots %+v", trace.Roots)
	}
	r := trace.Roots[0]
	if r.Attrs["route"] != "POST /v1/generate" {
		t.Fatalf("root attrs %v", r.Attrs)
	}
	if len(r.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(r.Children))
	}
	var seqRec *SpanRecord
	for _, c := range r.Children {
		if c.Name == "infer.sequence" {
			seqRec = c
		}
	}
	if seqRec == nil || len(seqRec.Children) != 3 {
		t.Fatalf("sequence span tree wrong: %+v", seqRec)
	}
	if seqRec.Children[2].Attrs["step"] != int64(2) {
		t.Fatalf("decode step attrs %v", seqRec.Children[2].Attrs)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(Config{SampleRatio: 1, Capacity: 8, SlowestN: 2, Seed: 7})
	for i := 0; i < 100; i++ {
		sp := tr.StartRoot("r", SpanContext{})
		sp.Finish()
	}
	recent, slow := tr.Snapshot(100)
	total := 0
	for _, trc := range recent {
		total += trc.Spans
	}
	if total != 8 {
		t.Fatalf("ring retained %d spans, want capacity 8", total)
	}
	if len(slow) != 2 {
		t.Fatalf("slowest retained %d, want 2", len(slow))
	}
}

func TestSlowestRetention(t *testing.T) {
	tr := New(Config{SampleRatio: 1, Capacity: 4, SlowestN: 2, Seed: 7})
	base := time.Now()
	root := tr.StartRoot("keep-parent", SpanContext{})
	root.ChildAt("slow-a", base, base.Add(500*time.Millisecond))
	root.ChildAt("slow-b", base, base.Add(300*time.Millisecond))
	for i := 0; i < 64; i++ {
		root.ChildAt("fast", base, base.Add(time.Microsecond))
	}
	_, slow := tr.Snapshot(10)
	if len(slow) != 2 {
		t.Fatalf("retained %d slowest, want 2", len(slow))
	}
	if slow[0].Name != "slow-a" || slow[1].Name != "slow-b" {
		t.Fatalf("slowest = %s, %s; want slow-a, slow-b", slow[0].Name, slow[1].Name)
	}
	root.Finish()
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := newTestTracer(1)
	sp := tr.StartRoot("r", SpanContext{})
	header := sp.Context().Traceparent()
	sc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("own traceparent %q does not parse", header)
	}
	if sc.TraceID != sp.TraceID() || sc.SpanID != sp.SpanID() || !sc.Sampled || !sc.Remote {
		t.Fatalf("round trip mangled context: %+v", sc)
	}
	sp.Finish()
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, ok := ParseTraceparent(valid)
	if !ok || !sc.Sampled || !sc.Remote {
		t.Fatalf("valid header rejected: %+v ok=%v", sc, ok)
	}
	if sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id %s", sc.TraceID)
	}
	if sc, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); !ok || sc.Sampled {
		t.Fatal("unsampled flag not parsed")
	}
	for _, bad := range []string{
		"",
		"00",
		"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",   // short trace id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01",   // short span id
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted malformed header %q", bad)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := newTestTracer(1)
	sp := tr.StartRoot("r", SpanContext{})
	ctx := ContextWith(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("span lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yields a span")
	}
	if got := ContextWith(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil span stored in context")
	}
	sp.Finish()
}

func TestLogHandlerInjectsTraceIDs(t *testing.T) {
	tr := newTestTracer(1)
	sp := tr.StartRoot("r", SpanContext{})
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	logger.InfoContext(ContextWith(context.Background(), sp), "hello", "k", "v")
	logger.InfoContext(context.Background(), "plain")

	dec := json.NewDecoder(&buf)
	var withSpan, without map[string]any
	if err := dec.Decode(&withSpan); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&without); err != nil {
		t.Fatal(err)
	}
	if withSpan["trace_id"] != sp.TraceID().String() || withSpan["span_id"] != sp.SpanID().String() {
		t.Fatalf("record missing trace identity: %v", withSpan)
	}
	if _, ok := without["trace_id"]; ok {
		t.Fatal("span-less record gained a trace_id")
	}
	sp.Finish()
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "warn", "json")
	logger.Info("dropped")
	logger.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering wrong: %q", out)
	}
	if !strings.Contains(out, `"msg":"kept"`) {
		t.Fatalf("json format not applied: %q", out)
	}
	// Unknown values fall back instead of failing.
	NewLogger(&buf, "bogus", "bogus").Info("ok")
}

func TestConcurrentFinish(t *testing.T) {
	tr := New(Config{SampleRatio: 1, Capacity: 64, SlowestN: 8, Seed: 3})
	root := tr.StartRoot("root", SpanContext{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := root.StartChild("worker")
				sp.SetInt("g", int64(g))
				sp.Finish()
			}
		}(g)
	}
	wg.Wait()
	root.Finish()
	recent, _ := tr.Snapshot(10)
	if len(recent) == 0 {
		t.Fatal("no traces after concurrent finishes")
	}
}

func TestSpanStartFinishDoesNotAllocate(t *testing.T) {
	tr := New(Config{SampleRatio: 1, Capacity: 1024, SlowestN: 8, Seed: 9})
	root := tr.StartRoot("root", SpanContext{})
	// Warm the pool and the slowest set.
	for i := 0; i < 100; i++ {
		sp := root.StartChild("warm")
		sp.SetInt("i", int64(i))
		sp.Finish()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := root.StartChild("steady")
		sp.SetInt("i", 1)
		sp.SetStr("s", "static")
		sp.Finish()
	})
	if allocs > 0 {
		t.Fatalf("sampled span start/finish allocates %.1f per op, want 0", allocs)
	}
	root.Finish()
}

func TestAttrOverflowDropped(t *testing.T) {
	tr := newTestTracer(1)
	sp := tr.StartRoot("r", SpanContext{})
	for i := 0; i < MaxAttrs+4; i++ {
		sp.SetInt("k", int64(i))
	}
	sp.Finish()
	recent, _ := tr.Snapshot(1)
	if len(recent) != 1 || len(recent[0].Roots) != 1 {
		t.Fatal("span not retained")
	}
	if n := len(recent[0].Roots[0].Attrs); n != 1 { // same key collapses in the map
		t.Fatalf("attrs rendered %d keys, want 1", n)
	}
}
