package trace

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// LogHandler wraps an slog.Handler so every record emitted with a
// span-carrying context gains trace_id and span_id attributes — the join
// key between structured logs, /debug/traces, and histogram exemplars.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps h.
func NewLogHandler(h slog.Handler) *LogHandler { return &LogHandler{inner: h} }

// Enabled delegates to the wrapped handler.
func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle stamps trace identity onto the record when ctx carries a span.
func (h *LogHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := FromContext(ctx); s != nil {
		r.AddAttrs(
			slog.String("trace_id", s.TraceID().String()),
			slog.String("span_id", s.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs wraps the inner handler's WithAttrs.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the inner handler's WithGroup.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds a trace-aware slog.Logger writing to w. level is one
// of "debug", "info", "warn", "error" (default info); format is "text" or
// "json" (default text). Unknown values fall back to the defaults — a
// daemon must not die over a logging flag typo.
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(NewLogHandler(h))
}
