// Package trace is the repository's request-scoped tracing substrate: a
// dependency-free, sampling-aware span tracer built for the same
// zero-allocation discipline as internal/obs. Spans are pooled, finished
// spans are copied into a fixed-size lock-free ring buffer (plus a small
// slowest-N retention set), and every operation on an unsampled span is a
// nil-receiver no-op — tracing compiled into the train and decode hot
// paths costs a single branch when sampling is off.
//
// The design mirrors the paper's own methodology: Long Exposure came out
// of profiling PEFT fine-tuning end-to-end to find where shadowy sparsity
// hides latency. This package is that profiler for the reproduction —
// per-request span trees across HTTP edge, admission control, the
// continuous-batching decode loop, the job scheduler, and per-step
// training phases.
//
// Design rules:
//
//   - Starting and finishing a sampled span never allocates in steady
//     state: spans come from a sync.Pool and finish by copying a fixed
//     struct into the ring.
//   - Every Span method is safe on a nil receiver. Unsampled requests flow
//     nil spans through the exact same call sites, so instrumentation has
//     one shape and the off state costs a nil check.
//   - Attribute keys must be static literals and values must be
//     already-materialized strings or numbers — the tracer never formats.
//   - The ring is a diagnostic buffer, not an audit log: under extreme
//     concurrency a wrapped slot can drop a span. Readers detect torn
//     entries via a per-slot sequence lock and skip them.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context trace id (16 bytes, all-zero = invalid).
type TraceID [16]byte

// SpanID is a W3C trace-context span id (8 bytes, all-zero = invalid).
type SpanID [8]byte

// Valid reports whether the id is non-zero.
func (t TraceID) Valid() bool { return t != TraceID{} }

// Valid reports whether the id is non-zero.
func (s SpanID) Valid() bool { return s != SpanID{} }

// String returns the lowercase hex form (allocates; keep off hot paths).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the lowercase hex form (allocates; keep off hot paths).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MaxAttrs bounds the attributes one span can carry; extra sets are
// dropped silently (fixed arrays keep ring entries allocation-free).
const MaxAttrs = 8

type attrKind uint8

const (
	attrNone attrKind = iota
	attrInt
	attrFloat
	attrStr
	attrBool
)

// Attr is one typed span attribute.
type Attr struct {
	Key  string
	kind attrKind
	num  uint64 // int64 / float64 bits / bool
	str  string
}

// Value returns the attribute's value as an any (for JSON rendering).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return int64(a.num)
	case attrFloat:
		return floatFromBits(a.num)
	case attrStr:
		return a.str
	case attrBool:
		return a.num != 0
	}
	return nil
}

// Config sizes a Tracer.
type Config struct {
	// SampleRatio is the fraction of locally-rooted traces to record, in
	// [0, 1]. 0 (the zero value) samples nothing: spans are structurally
	// wired but every Start returns nil. Inbound traceparent headers
	// override the ratio — the remote sampled flag is honored either way.
	SampleRatio float64
	// Capacity is the finished-span ring size in entries (default 4096).
	Capacity int
	// SlowestN retains the N slowest finished spans regardless of ring
	// wraparound (default 32; 0 uses the default, negative disables).
	SlowestN int
	// Seed fixes the id-generation sequence for deterministic tests;
	// 0 seeds from crypto/rand.
	Seed uint64
}

// Tracer owns sampling, id generation, and finished-span retention.
// A nil *Tracer is valid and records nothing.
type Tracer struct {
	ratio    float64
	idseq    atomic.Uint64
	ring     []entry
	widx     atomic.Uint64
	pool     sync.Pool
	slow     []entry
	slowMu   sync.Mutex
	slowN    int
	slowMin  atomic.Int64 // smallest retained duration once the set is full
	slowFull atomic.Bool
}

// entry is one finished span in the ring: a fixed-size copy so recording
// never allocates. seq is a per-slot sequence lock — odd while a writer
// owns the slot.
type entry struct {
	seq    atomic.Uint64
	tid    TraceID
	sid    SpanID
	parent SpanID
	name   string
	start  int64 // unix nanoseconds
	dur    int64 // nanoseconds
	attrs  [MaxAttrs]Attr
	nattrs int32
}

// New builds a tracer. See Config for defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.SlowestN == 0 {
		cfg.SlowestN = 32
	}
	if cfg.SampleRatio < 0 {
		cfg.SampleRatio = 0
	}
	if cfg.SampleRatio > 1 {
		cfg.SampleRatio = 1
	}
	t := &Tracer{ratio: cfg.SampleRatio, ring: make([]entry, cfg.Capacity)}
	if cfg.SlowestN > 0 {
		t.slowN = cfg.SlowestN
		t.slow = make([]entry, 0, cfg.SlowestN)
	}
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		} else {
			seed = uint64(time.Now().UnixNano())
		}
	}
	t.idseq.Store(seed)
	t.pool.New = func() any { return new(Span) }
	return t
}

// nextID draws the next pseudo-random 64-bit id (splitmix64 over an atomic
// counter: lock-free, allocation-free, never in lockstep across tracers).
func (t *Tracer) nextID() uint64 {
	x := t.idseq.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // all-zero ids are invalid per W3C
	}
	return x
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// StartRoot begins a new trace (or continues an inbound one) and returns
// its root span, or nil when the trace is not sampled. remote carries the
// parsed inbound traceparent; a zero SpanContext starts a fresh trace
// subject to the tracer's sample ratio, while a remote context's sampled
// flag is honored as-is (distributed callers decide head sampling).
func (t *Tracer) StartRoot(name string, remote SpanContext) *Span {
	if t == nil {
		return nil
	}
	if remote.Remote {
		if !remote.Sampled || !remote.TraceID.Valid() {
			return nil
		}
		return t.start(name, remote.TraceID, remote.SpanID)
	}
	if t.ratio <= 0 {
		return nil
	}
	if t.ratio < 1 {
		// Decide off the id stream itself: cheap, uniform, lock-free.
		if float64(t.nextID())/float64(^uint64(0)) >= t.ratio {
			return nil
		}
	}
	return t.start(name, t.newTraceID(), SpanID{})
}

func (t *Tracer) start(name string, tid TraceID, parent SpanID) *Span {
	s := t.pool.Get().(*Span)
	s.tr = t
	s.name = name
	s.tid = tid
	s.sid = t.newSpanID()
	s.parent = parent
	s.start = time.Now()
	s.nattrs = 0
	return s
}

// Span is one in-flight operation. All methods are nil-safe: a nil span
// (unsampled request) turns every call into a no-op, so call sites never
// branch on sampling themselves. A span belongs to one goroutine at a
// time; children may be started from other goroutines, but attributes and
// Finish belong to the owner. Using a span after Finish is a bug (it
// returns to the pool).
type Span struct {
	tr     *Tracer
	name   string
	tid    TraceID
	sid    SpanID
	parent SpanID
	start  time.Time
	attrs  [MaxAttrs]Attr
	nattrs int32
}

// Sampled reports whether the span records anything.
func (s *Span) Sampled() bool { return s != nil }

// TraceID returns the span's trace id (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tid
}

// SpanID returns the span's id (zero for nil spans).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.sid
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tid, SpanID: s.sid, Sampled: true}
}

// StartChild begins a child span. Nil-safe: children of nil are nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.tid, s.sid)
}

// StartChildAt is StartChild with an explicit start time, for callers that
// measured the operation before deciding to record it.
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	c := s.StartChild(name)
	if c != nil {
		c.start = start
	}
	return c
}

// ChildAt records an already-completed child span from its measured
// interval — how phase timings (forward/backward/optim) become spans
// without re-instrumenting the timed region.
func (s *Span) ChildAt(name string, start, end time.Time) {
	c := s.StartChildAt(name, start)
	if c != nil {
		c.finishDur(end.Sub(start))
	}
}

func (s *Span) setAttr(key string, kind attrKind, num uint64, str string) {
	if s == nil || int(s.nattrs) >= MaxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, kind: kind, num: num, str: str}
	s.nattrs++
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.setAttr(key, attrInt, uint64(v), "") }

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.setAttr(key, attrFloat, floatBits(v), "") }

// SetStr attaches a string attribute. The value is retained as-is; pass
// already-materialized strings, never fmt output, on hot paths.
func (s *Span) SetStr(key, v string) { s.setAttr(key, attrStr, 0, v) }

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	var n uint64
	if v {
		n = 1
	}
	s.setAttr(key, attrBool, n, "")
}

// Finish records the span into the tracer's ring and returns it to the
// pool. Nil-safe; calling twice on the same span is a bug.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.finishDur(time.Since(s.start))
}

func (s *Span) finishDur(dur time.Duration) {
	t := s.tr
	t.record(s, int64(dur))
	s.tr = nil
	t.pool.Put(s)
}

// record copies the finished span into the next ring slot (seqlock write)
// and feeds the slowest-N set.
func (t *Tracer) record(s *Span, dur int64) {
	idx := (t.widx.Add(1) - 1) % uint64(len(t.ring))
	e := &t.ring[idx]
	// Claim the slot: CAS from even to odd so two writers that wrapped
	// onto the same slot serialize instead of interleaving a torn entry.
	for {
		seq := e.seq.Load()
		if seq&1 == 0 && e.seq.CompareAndSwap(seq, seq+1) {
			break
		}
	}
	e.tid, e.sid, e.parent = s.tid, s.sid, s.parent
	e.name = s.name
	e.start = s.start.UnixNano()
	e.dur = dur
	e.nattrs = s.nattrs
	copy(e.attrs[:s.nattrs], s.attrs[:s.nattrs])
	e.seq.Add(1)

	if t.slowN > 0 && (!t.slowFull.Load() || dur > t.slowMin.Load()) {
		t.recordSlow(e, dur)
	}
}

// recordSlow inserts a finished span into the slowest-N set. The fast
// path in record rejects spans under the current floor with one atomic
// load; the lock here only pays off for genuinely slow spans.
func (t *Tracer) recordSlow(e *entry, dur int64) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	if len(t.slow) < t.slowN {
		t.slow = append(t.slow, entry{})
		copyEntry(&t.slow[len(t.slow)-1], e, dur)
	} else {
		mi := 0
		for i := 1; i < len(t.slow); i++ {
			if t.slow[i].dur < t.slow[mi].dur {
				mi = i
			}
		}
		if t.slow[mi].dur >= dur {
			return
		}
		copyEntry(&t.slow[mi], e, dur)
	}
	if len(t.slow) == t.slowN {
		minDur := t.slow[0].dur
		for i := 1; i < len(t.slow); i++ {
			if t.slow[i].dur < minDur {
				minDur = t.slow[i].dur
			}
		}
		t.slowMin.Store(minDur)
		t.slowFull.Store(true)
	}
}

func copyEntry(dst, src *entry, dur int64) {
	dst.tid, dst.sid, dst.parent = src.tid, src.sid, src.parent
	dst.name = src.name
	dst.start = src.start
	dst.dur = dur
	dst.nattrs = src.nattrs
	copy(dst.attrs[:], src.attrs[:])
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
