package experiments

import (
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// Fig12 regenerates Figure 12: dynamic-aware operator performance against
// dense counterparts across sparsity ratios — block-wise sparsity for
// attention, neuron-wise for the MLP. These are real CPU kernel
// measurements of the actual operators in internal/sparse.
func Fig12(o Options) *Report {
	r := &Report{ID: "fig12", Title: "Dynamic operator performance vs dense across sparsity ratios (measured)"}

	seq := o.pick(128, 512)
	blk := o.pick(16, 32)
	hd := o.pick(32, 64)
	tokens := o.pick(128, 512)
	d := o.pick(128, 512)
	hidden := 4 * d
	reps := o.pick(3, 10)
	rng := tensor.NewRNG(o.seed())

	sparsities := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95}

	// --- Attention: SDD + causal softmax + DSD over a block layout.
	nb := seq / blk
	q := make([]float32, seq*hd)
	k := make([]float32, seq*hd)
	v := make([]float32, seq*hd)
	for i := range q {
		q[i] = float32(rng.Norm())
		k[i] = float32(rng.Norm())
		v[i] = float32(rng.Norm())
	}
	out := make([]float32, seq*hd)

	denseAttn := timeIt(reps, func() {
		clear(out)
		sparse.DenseCausalAttention(out, q, k, v, seq, hd, 0.125)
	})

	var attnRows [][]string
	for _, sp := range sparsities {
		density := (1 - sp) // fraction of the causal triangle kept
		layout := randomCausalLayout(nb, density*causalFrac(nb), rng)
		elapsed := timeIt(reps, func() {
			m := sparse.NewBlockSparse(layout, blk)
			sparse.SDD(m, q, k, hd)
			sparse.CausalSoftmax(m, 0.125)
			clear(out)
			sparse.DSD(out, m, v, hd)
		})
		attnRows = append(attnRows, []string{
			pctv(sp), f3(layout.Density()), ms(elapsed), ms(denseAttn),
			speedup(denseAttn.Seconds(), elapsed.Seconds()),
		})
	}
	r.AddSection("Multi-head attention operator (block-wise sparsity)",
		[]string{"Sparsity", "Grid density", "Sparse op (ms)", "Dense op (ms)", "Speedup"}, attnRows)

	// --- MLP: neuron-block FC1 + FC2 vs dense GEMMs.
	x := make([]float32, tokens*d)
	for i := range x {
		x[i] = float32(rng.Norm())
	}
	w1 := sparse.NewColMajor(d, hidden)
	w2 := sparse.NewRowMajor(hidden, d)
	for i := range w1.Data {
		w1.Data[i] = float32(rng.Norm())
	}
	for i := range w2.Data {
		w2.Data[i] = float32(rng.Norm())
	}
	hiddenBuf := make([]float32, tokens*hidden)
	outBuf := make([]float32, tokens*d)
	all := sparse.AllBlocks(hidden, blk)

	denseMLP := timeIt(reps, func() {
		clear(hiddenBuf)
		clear(outBuf)
		sparse.FC1Sparse(hiddenBuf, x, tokens, w1, all, blk)
		sparse.FC2Sparse(outBuf, hiddenBuf, tokens, w2, all, blk)
	})

	var mlpRows [][]string
	for _, sp := range sparsities {
		keep := int(float64(len(all))*(1-sp) + 0.5)
		if keep < 1 {
			keep = 1
		}
		blocks := all[:keep]
		elapsed := timeIt(reps, func() {
			clear(hiddenBuf)
			clear(outBuf)
			sparse.FC1Sparse(hiddenBuf, x, tokens, w1, blocks, blk)
			sparse.FC2Sparse(outBuf, hiddenBuf, tokens, w2, blocks, blk)
		})
		mlpRows = append(mlpRows, []string{
			pctv(sp), itoa(keep), ms(elapsed), ms(denseMLP),
			speedup(denseMLP.Seconds(), elapsed.Seconds()),
		})
	}
	r.AddSection("MLP operator (neuron-wise sparsity)",
		[]string{"Sparsity", "Active blocks", "Sparse op (ms)", "Dense op (ms)", "Speedup"}, mlpRows)

	r.AddNote("Shape to match (paper Fig 12): sparse-operator time falls near-linearly with sparsity; speedups reach 3-5x at high sparsity; at 0%% sparsity the dynamic operator matches dense closely (no format-conversion overhead).")
	return r
}

// causalFrac converts "fraction of the causal triangle" to "fraction of the
// full grid" for randomCausalLayout's parameterization.
func causalFrac(nb int) float64 {
	return float64(nb*(nb+1)) / 2 / float64(nb*nb)
}
