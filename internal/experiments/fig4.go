package experiments

import (
	"strings"

	"longexposure/internal/core"
	"longexposure/internal/exposer"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

// Fig4 regenerates the paper's motivating observation (Figure 4): the
// sparsity visible for a *single token* versus the shadowy overlap of a
// *sequence*, in both multi-head attention and the MLP block — measured on
// real activations of the primed sim model.
func Fig4(o Options) *Report {
	r := &Report{ID: "fig4", Title: "Shadowy sparsity: single-token vs sequence-level sparsity (measured)"}

	spec := o.simSpec(nn.ActReLU)
	batch, seq, blk := o.simGeometry()
	sys := core.New(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed()})
	batches := e2eBatches(spec, batch, seq, 1, o.seed())
	sys.Model.Forward(batches[0].Inputs, nil, nil)

	// MLP side (Fig 4c/4d): per-token sparsity vs overall (AND-reduced)
	// sparsity per layer.
	var mlpRows [][]string
	for li, b := range sys.Model.Blocks {
		mask := b.MLP.ActivationMask()
		mlpRows = append(mlpRows, []string{
			itoa(li),
			f3(exposer.PerTokenMLPSparsity(mask)),
			f3(exposer.ShadowyMLPSparsity(mask)),
		})
	}
	r.AddSection("MLP activations: per-token vs overall sparsity",
		[]string{"Layer", "Per-token sparsity (Fig 4c)", "Overall sparsity (Fig 4d)"}, mlpRows)

	// Attention side (Fig 4a/4b): the per-row block need of a single late
	// token vs the union over the whole sequence, layer 0.
	b0 := sys.Model.Blocks[0]
	probs := b0.Attn.DenseProbs(nil)
	masks := sys.Exposer.HeadMasks(probs, batch, spec.Config.Heads)
	nb := seq / blk
	var attnRows [][]string
	for h, m := range masks {
		lastRowNeed := singleRowNeed(probs[h], blk, sys.Exposer.Config().AttnThreshold)
		attnRows = append(attnRows, []string{
			itoa(h),
			f3(1 - float64(lastRowNeed)/float64(nb)),
			f3(1 - float64(m.NNZ())/float64(nb*(nb+1)/2)),
		})
	}
	r.AddSection("Attention (layer 0): single-token vs sequence mask sparsity per head",
		[]string{"Head", "Last-token row sparsity (Fig 4a)", "Sequence mask sparsity (Fig 4b)"}, attnRows)

	// A small heat map of one head's sequence-level probabilities.
	viz := probHeatmap(probs[0], blk)
	r.AddSection("Attention probability heat map (layer 0, head 0; █▓▒░ by block mass)",
		[]string{"Blocks"}, viz)

	r.AddNote("The shadowy effect: each token's pattern is much sparser than the sequence union — overall MLP sparsity collapses relative to per-token sparsity, and sequence masks are denser than single-token needs (paper Fig 4).")
	return r
}

// singleRowNeed counts the blocks the *last* token's attention row needs
// under the exposer threshold.
func singleRowNeed(p *tensor.Tensor, blk int, theta float64) int {
	s := p.Dim(0)
	i := s - 1
	row := p.Row(i)
	var peak float32
	for j := 0; j <= i; j++ {
		if row[j] > peak {
			peak = row[j]
		}
	}
	cut := float32(theta) * peak
	need := map[int]bool{i / blk: true}
	for j := 0; j <= i; j++ {
		if row[j] >= cut {
			need[j/blk] = true
		}
	}
	return len(need)
}

// probHeatmap renders block attention mass as coarse ASCII shades.
func probHeatmap(p *tensor.Tensor, blk int) [][]string {
	s := p.Dim(0)
	nb := s / blk
	mass := make([]float64, nb*nb)
	var peak float64
	for i := 0; i < s; i++ {
		for j := 0; j <= i; j++ {
			mass[(i/blk)*nb+j/blk] += float64(p.At(i, j))
		}
	}
	for _, v := range mass {
		if v > peak {
			peak = v
		}
	}
	shades := []rune{' ', '░', '▒', '▓', '█'}
	rows := make([][]string, nb)
	for br := 0; br < nb; br++ {
		var sb strings.Builder
		for bc := 0; bc < nb; bc++ {
			if bc > br {
				sb.WriteByte('.')
				continue
			}
			v := mass[br*nb+bc] / peak
			idx := int(v * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteRune(shades[idx])
		}
		rows[br] = []string{"`" + sb.String() + "`"}
	}
	return rows
}
