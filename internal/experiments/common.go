package experiments

import (
	"sync"

	"longexposure/internal/core"
	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
)

// Options tunes experiment cost. Quick mode shrinks step counts and grid
// sizes so the whole suite runs in test/bench budgets; full mode is what
// cmd/longexp uses by default.
type Options struct {
	Quick bool
	Seed  uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 2024
	}
	return o.Seed
}

// pick returns quick when Quick is set, else full.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// simSpec returns the sim-scale model used for real measurements.
func (o Options) simSpec(act nn.Activation) model.Spec {
	if o.Quick {
		return model.SimSmall(act)
	}
	base := model.OPT1p3B()
	if act == nn.ActGeLU {
		base = model.GPT2Large()
	}
	return model.Sim(base)
}

// simGeometry returns (batch, seq, blk) for sim-scale runs.
func (o Options) simGeometry() (batch, seq, blk int) {
	if o.Quick {
		return 2, 16, 4
	}
	return 2, 128, 8
}

// e2eBatches builds the E2E-style fine-tuning workload for a spec.
func e2eBatches(spec model.Spec, batch, seq, n int, seed uint64) []data.Batch {
	corpus := data.NewE2ECorpus(spec.Config.Vocab, max(1, seq/6), seed)
	examples := corpus.Generate(n*batch, seed+1)
	return data.Batches(examples, batch, seq)
}

// idsOf extracts the input grids of a few batches (calibration format).
func idsOf(batches []data.Batch, n int) [][][]int {
	var out [][][]int
	for _, b := range batches[:min(n, len(batches))] {
		out = append(out, b.Inputs)
	}
	return out
}

// calibration bundles a trained Long Exposure system with its measured
// densities — shared by every modeled experiment so sim-scale measurement
// happens once per activation kind.
type calibration struct {
	AttnDensity float64 // active blocks / full grid (gpusim convention)
	MLPDensity  float64
	AttnRecall  float64
	MLPRecall   float64
}

var (
	calibMu    sync.Mutex
	calibCache = map[string]calibration{}
)

// measureDensities trains a sim-scale Long Exposure pipeline and measures
// the achieved densities, caching per (activation, quick) key.
func measureDensities(o Options, act nn.Activation) calibration {
	key := act.String()
	if o.Quick {
		key += "-quick"
	}
	calibMu.Lock()
	if c, ok := calibCache[key]; ok {
		calibMu.Unlock()
		return c
	}
	calibMu.Unlock()

	spec := o.simSpec(act)
	batch, seq, blk := o.simGeometry()
	sys := core.New(core.Config{Prime: true,
		Spec:   spec,
		Method: peft.LoRA,
		Blk:    blk,
		Seed:   o.seed(),
	})
	batches := e2eBatches(spec, batch, seq, o.pick(4, 8), o.seed()+2)
	stats := sys.PretrainPredictors(idsOf(batches, o.pick(2, 4)),
		predictor.TrainConfig{Epochs: o.pick(6, 20), Seed: o.seed()})
	attn, mlp := sys.Densities(idsOf(batches, o.pick(2, 4)))

	c := calibration{
		AttnDensity: attn,
		MLPDensity:  mlp,
		AttnRecall:  stats.AttnRecall,
		MLPRecall:   stats.MLPRecall,
	}
	calibMu.Lock()
	calibCache[key] = c
	calibMu.Unlock()
	return c
}

// predictorTrainConfig aliases the predictor training knobs for the
// drivers' convenience.
type predictorTrainConfig = predictor.TrainConfig

// dataTasks lists the Table III tasks.
func dataTasks() []data.Task { return data.Tasks() }

// lmBatchesForCopy builds simple LM batches (identity task) used where the
// workload content does not matter, only its shape.
func lmBatchesForCopy(vocab, batch, seq, n int, seed uint64) []data.Batch {
	rng := tensor.NewRNG(seed)
	var examples []data.Example
	for i := 0; i < n*batch; i++ {
		in := make([]int, seq)
		tg := make([]int, seq)
		for j := range in {
			in[j] = data.TokBase + rng.Intn(vocab-data.TokBase)
			tg[j] = in[j]
		}
		examples = append(examples, data.Example{Input: in, Target: tg, Label: -1, AnswerPos: -1})
	}
	return data.Batches(examples, batch, seq)
}
