package experiments

import (
	"fmt"
	"strings"

	"longexposure/internal/core"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// Fig11 regenerates Figure 11: (a) fine-tuning loss curves of Long Exposure
// versus random sparse patterns of matched density, and (b) a visualization
// of the attention predictor's approximate scores against the ground truth.
// Everything here is real sim-scale execution.
func Fig11(o Options) *Report {
	r := &Report{ID: "fig11", Title: "Fine-tuning loss curves and predictor visualization (measured)"}

	spec := o.simSpec(nn.ActReLU)
	batch, seq, blk := o.simGeometry()
	batches := e2eBatches(spec, batch, seq, o.pick(4, 10), o.seed())
	epochs := o.pick(2, 6)

	// Long Exposure arm (also yields the measured densities for the random
	// arms).
	sys := core.New(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed(), LR: 2e-3})
	stats := sys.PretrainPredictors(idsOf(batches, o.pick(2, 3)), predictorTrainCfg(o))
	attnD, mlpD := sys.Densities(idsOf(batches, 2))
	leRes := sys.Engine().Run(batches, epochs)

	// Dense reference arm.
	denseEng := core.NewBaseline(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed(), LR: 2e-3})
	denseRes := denseEng.Run(batches, epochs)

	// Random-attention arm: random causal layouts at the LE density.
	randAttn := core.NewBaseline(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed(), LR: 2e-3})
	randAttn.Planner = &randomPlanner{blk: blk, heads: spec.Config.Heads, attnDensity: attnD, rng: tensor.NewRNG(o.seed() + 31)}
	randAttnRes := randAttn.Run(batches, epochs).Losses

	// Random-MLP arm: random neuron blocks at the LE ratio.
	randMLP := core.NewBaseline(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed(), LR: 2e-3})
	randMLP.Planner = &randomPlanner{blk: blk, hidden: spec.Config.Hidden, mlpRatio: mlpD, rng: tensor.NewRNG(o.seed() + 37)}
	randMLPRes := randMLP.Run(batches, epochs).Losses

	// Section 1: loss checkpoints.
	arms := []struct {
		name   string
		losses []float64
	}{
		{"Dense (reference)", denseRes.Losses},
		{"LongExposure", leRes.Losses},
		{"Random attention mask", randAttnRes},
		{"Random MLP blocks", randMLPRes},
	}
	n := len(denseRes.Losses)
	checkpoints := []int{0, n / 4, n / 2, 3 * n / 4, n - 1}
	headers := []string{"Arm"}
	for _, c := range checkpoints {
		headers = append(headers, fmt.Sprintf("step %d", c+1))
	}
	var rows [][]string
	for _, arm := range arms {
		row := []string{arm.name}
		for _, c := range checkpoints {
			if c < len(arm.losses) {
				row = append(row, f3(arm.losses[c]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	r.AddSection("Loss curves (checkpointed)", headers, rows)

	// Section 2: predictor quality (the paper reports 96.35% MLP recall).
	r.AddSection("Predictor quality", []string{"Metric", "Value"}, [][]string{
		{"Attention mask recall", f3(stats.AttnRecall)},
		{"MLP block recall", f3(stats.MLPRecall)},
		{"Attention density used", f3(attnD)},
		{"MLP density used", f3(mlpD)},
	})

	// Section 3: prediction-vs-target visualization for layer 0, head 0.
	viz := visualizePrediction(sys, batches[0].Inputs, blk)
	r.AddSection("Attention score prediction vs target (layer 0, head 0)",
		[]string{"Prediction", "Target"}, viz)

	r.AddNote("Shape to match (paper Fig 11): Long Exposure's loss tracks the dense curve; random masks converge worse — accurate runtime prediction is what preserves convergence.")
	return r
}

// randomPlanner supplies random sparse patterns of a matched density — the
// Figure 11(a) ablation baselines. A fresh random layout is drawn per layer
// per step, mimicking an uninformed dynamic mask.
type randomPlanner struct {
	blk, heads, hidden int
	attnDensity        float64 // >0 enables random attention layouts
	mlpRatio           float64 // >0 enables random MLP block subsets
	rng                *tensor.RNG
}

// Layer implements nn.Planner.
func (rp *randomPlanner) Layer(int) nn.LayerPlanner { return rp }

// PlanAttention implements nn.LayerPlanner.
func (rp *randomPlanner) PlanAttention(_ *tensor.Tensor, _, seq int) ([]*sparse.Layout, int) {
	if rp.attnDensity <= 0 {
		return nil, 0
	}
	nb := seq / rp.blk
	out := make([]*sparse.Layout, rp.heads)
	for h := range out {
		out[h] = randomCausalLayout(nb, rp.attnDensity, rp.rng)
	}
	return out, rp.blk
}

// PlanMLP implements nn.LayerPlanner.
func (rp *randomPlanner) PlanMLP(_ *tensor.Tensor, _, _ int) ([]int, int) {
	if rp.mlpRatio <= 0 {
		return nil, 0
	}
	nBlk := rp.hidden / rp.blk
	want := int(float64(nBlk)*rp.mlpRatio + 0.5)
	if want < 1 {
		want = 1
	}
	perm := rp.rng.Perm(nBlk)[:want]
	// Sort ascending (insertion sort; want is small).
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm, rp.blk
}

// randomCausalLayout draws a causal layout whose density over the *full*
// grid is approximately p: diagonal always active, strictly-lower blocks
// active with the probability that hits the target.
func randomCausalLayout(nb int, p float64, rng *tensor.RNG) *sparse.Layout {
	causal := float64(nb*(nb+1)) / 2
	lower := causal - float64(nb)
	q := 0.0
	if lower > 0 {
		q = (p*float64(nb*nb) - float64(nb)) / lower
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Pre-draw so the layout predicate is deterministic for NewLayout's
	// two-pass construction.
	draws := make([]bool, nb*nb)
	for br := 0; br < nb; br++ {
		for bc := 0; bc < br; bc++ {
			draws[br*nb+bc] = rng.Float64() < q
		}
	}
	return sparse.NewLayout(nb, func(br, bc int) bool {
		if bc > br {
			return false
		}
		if bc == br {
			return true
		}
		return draws[br*nb+bc]
	})
}

// visualizePrediction renders side-by-side block heat maps (coarse ASCII)
// of the predictor's approximate block scores and the exposer's target
// mask for one head.
func visualizePrediction(sys *core.System, ids [][]int, blk int) [][]string {
	m := sys.Model
	m.Forward(ids, nil, nil)
	b0 := m.Blocks[0]
	batch := len(ids)
	seq := m.TotalSeq(len(ids[0]))

	// Predicted mask.
	pred := sys.Predictors.Layers[0].Attn.PredictMasks(b0.LN1Out(), batch, seq)[0]
	// Target mask from true probabilities.
	target := sys.Exposer.HeadMasks(b0.Attn.DenseProbs(nil), batch, sys.Cfg.Spec.Config.Heads)[0]

	nb := seq / blk
	render := func(l *sparse.Layout) []string {
		var lines []string
		for br := 0; br < nb; br++ {
			var sb strings.Builder
			for bc := 0; bc < nb; bc++ {
				switch {
				case bc > br:
					sb.WriteByte('.')
				case l.Active(br, bc):
					sb.WriteByte('#')
				default:
					sb.WriteByte(' ')
				}
			}
			lines = append(lines, sb.String())
		}
		return lines
	}
	p, t := render(pred), render(target)
	rows := make([][]string, nb)
	for i := range rows {
		rows[i] = []string{"`" + p[i] + "`", "`" + t[i] + "`"}
	}
	return rows
}
