package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4",
		"fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"ablations"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("missing driver for %s", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d drivers, want %d", len(Registry), len(want))
	}
	if _, err := Run("nope", quick); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestEveryDriverProducesWellFormedReport(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Run(id, quick)
			if err != nil {
				t.Fatal(err)
			}
			if r.ID != id {
				t.Fatalf("report id %q", r.ID)
			}
			if len(r.Sections) == 0 {
				t.Fatal("no sections")
			}
			for _, s := range r.Sections {
				if len(s.Rows) == 0 {
					t.Fatalf("section %q empty", s.Name)
				}
				for _, row := range s.Rows {
					if len(row) != len(s.Headers) {
						t.Fatalf("section %q: row width %d != headers %d", s.Name, len(row), len(s.Headers))
					}
				}
			}
			md := r.Markdown()
			if !strings.Contains(md, r.Title) {
				t.Fatal("markdown missing title")
			}
			if got := titles[id]; got != r.Title {
				t.Fatalf("Describe title %q out of sync with driver title %q", got, r.Title)
			}
		})
	}
}

func TestDescribeCoversRegistry(t *testing.T) {
	infos := Describe()
	if len(infos) != len(Registry) {
		t.Fatalf("Describe lists %d experiments, registry has %d", len(infos), len(Registry))
	}
	for _, info := range infos {
		if _, ok := Registry[info.ID]; !ok {
			t.Errorf("Describe lists unknown id %q", info.ID)
		}
		if info.Title == "" {
			t.Errorf("experiment %q has no title", info.ID)
		}
	}
}

// parse "1.23x" → 1.23
func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", s)
	}
	return v
}

func TestFig7SpeedupsPositiveAndGrowWithSeq(t *testing.T) {
	r := Fig7(quick)
	a100 := r.Sections[0]
	// Rows come in (model, seq 512), (model, seq 1024) pairs; last column
	// is the average speedup.
	last := len(a100.Headers) - 1
	for i := 0; i+1 < len(a100.Rows); i += 2 {
		s512 := parseSpeedup(t, a100.Rows[i][last])
		s1024 := parseSpeedup(t, a100.Rows[i+1][last])
		if s512 <= 1 {
			t.Errorf("%s@512: speedup %.2f ≤ 1", a100.Rows[i][0], s512)
		}
		if s1024 <= s512 {
			t.Errorf("%s: speedup did not grow with seq (%.2f → %.2f)", a100.Rows[i][0], s512, s1024)
		}
	}
}

func TestFig8MemoryReductionPositive(t *testing.T) {
	r := Fig8(quick)
	for _, sec := range r.Sections {
		for _, row := range sec.Rows {
			red := strings.TrimSuffix(row[len(row)-1], "x")
			v, err := strconv.ParseFloat(red, 64)
			if err != nil {
				t.Fatalf("bad reduction cell %q", red)
			}
			if v <= 1 {
				t.Errorf("%s seq %s: reduction %.2f ≤ 1", sec.Name, row[0], v)
			}
		}
	}
	// The longest dense sequence must OOM on the A100 for OPT-1.3B.
	last := r.Sections[1].Rows[len(r.Sections[1].Rows)-1]
	if !strings.Contains(last[1], "OOM") {
		t.Errorf("dense OPT-1.3B@4096 did not OOM: %v", last)
	}
}

func TestFig9HeadSpecificBeatsUniform(t *testing.T) {
	r := Fig9(quick)
	attn := r.Sections[0]
	for _, row := range attn.Rows {
		shadowy, _ := strconv.ParseFloat(row[1], 64)
		le, _ := strconv.ParseFloat(row[4], 64)
		if le < shadowy-1e-9 {
			t.Errorf("layer %s: LE sparsity %.3f below uniform %.3f", row[0], le, shadowy)
		}
	}
	// MLP threshold sweep must be monotone non-decreasing across columns.
	mlp := r.Sections[1]
	for _, row := range mlp.Rows {
		prev := -1.0
		for _, cell := range row[2:] {
			v, _ := strconv.ParseFloat(cell, 64)
			if v+1e-9 < prev {
				t.Errorf("layer %s: threshold sweep not monotone: %v", row[0], row[2:])
			}
			prev = v
		}
	}
}

func TestFig11LongExposureTracksDense(t *testing.T) {
	r := Fig11(quick)
	loss := r.Sections[0]
	final := len(loss.Headers) - 1
	get := func(i int) float64 {
		v, err := strconv.ParseFloat(loss.Rows[i][final], 64)
		if err != nil {
			t.Fatalf("bad loss cell %q", loss.Rows[i][final])
		}
		return v
	}
	dense, le := get(0), get(1)
	if le > dense*1.5+0.2 {
		t.Errorf("LE final loss %.3f strays from dense %.3f", le, dense)
	}
}

func TestFig12SpeedupAtHighSparsity(t *testing.T) {
	r := Fig12(quick)
	for _, sec := range r.Sections[:2] {
		lastRow := sec.Rows[len(sec.Rows)-1] // 95% sparsity
		s := parseSpeedup(t, lastRow[len(lastRow)-1])
		if s < 1.5 {
			t.Errorf("%s: 95%% sparsity speedup %.2f < 1.5", sec.Name, s)
		}
	}
}

func TestFig14NearLinearEfficiency(t *testing.T) {
	r := Fig14(quick)
	for _, sec := range r.Sections[:3] { // modeled sections
		for _, row := range sec.Rows {
			eff, err := strconv.ParseFloat(row[len(row)-1], 64)
			if err != nil {
				t.Fatalf("bad efficiency cell %q", row[len(row)-1])
			}
			if eff < 0.7 {
				t.Errorf("%s %s: 4-GPU efficiency %.2f", sec.Name, row[0], eff)
			}
		}
	}
	// Real validation: replica drift must be zero.
	valid := r.Sections[len(r.Sections)-1]
	if valid.Rows[2][1] != "0.000" {
		t.Errorf("replica drift = %s", valid.Rows[2][1])
	}
}

func TestTable1OptimizerShareCollapses(t *testing.T) {
	r := Table1(quick)
	modeled := r.Sections[1]
	// Row 0 is FullFT, row 1 LoRA; optimizer column is index 3 of the form
	// "x (y%)". Extract the percentage.
	sharePct := func(cell string) float64 {
		open := strings.Index(cell, "(")
		closep := strings.Index(cell, "%")
		v, err := strconv.ParseFloat(cell[open+1:closep], 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	full := sharePct(modeled.Rows[0][3])
	lora := sharePct(modeled.Rows[1][3])
	if full < 5 {
		t.Errorf("FullFT optimizer share %.1f%% too small", full)
	}
	if lora > 2 {
		t.Errorf("LoRA optimizer share %.1f%% too large", lora)
	}
}

func TestTable4AccuracyPreserved(t *testing.T) {
	r := Table4(quick)
	// The worst-drop note is first; parse the percentage.
	note := r.Notes[0]
	idx := strings.Index(note, ":")
	pctIdx := strings.Index(note[idx:], "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(note[idx+1:idx+pctIdx]), 64)
	if err != nil {
		t.Fatalf("cannot parse worst drop from %q", note)
	}
	if v > 15 {
		t.Errorf("worst accuracy drop %.1f%% too large even for quick mode", v)
	}
}

func TestRunAllStableOrder(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not sorted")
		}
	}
}
