package experiments

import (
	"fmt"

	"longexposure/internal/gpusim"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

// Fig14 regenerates Figure 14: strong scalability of Long Exposure with
// GPU count. Section 1 is the paper-scale model (ring all-reduce over
// trainable gradients, per-GPU batch shrinking); section 2 validates the
// data-parallel semantics with a real multi-worker CPU run.
func Fig14(o Options) *Report {
	r := &Report{ID: "fig14", Title: "Strong scalability of Long Exposure"}
	cal := measureDensities(o, nn.ActReLU)
	dev := gpusim.A100()

	specs := []model.Spec{model.OPT125M(), model.OPT350M(), model.OPT1p3B()}
	gpus := []int{1, 2, 4}

	for _, m := range fig7Methods {
		var rows [][]string
		for _, spec := range specs {
			row := []string{spec.Config.Name}
			shape := gpusim.StepShape{
				Spec: spec, Batch: 8, Seq: 512, Method: m,
				UseLongExposure: true,
				AttnDensity:     cal.AttnDensity,
				MLPDensity:      cal.MLPDensity,
			}
			for _, g := range gpus {
				t := gpusim.DataParallelStep(dev, shape, g)
				row = append(row, ms(t))
			}
			row = append(row, fmt.Sprintf("%.2f", gpusim.ScalingEfficiency(dev, shape, 4)))
			rows = append(rows, row)
		}
		r.AddSection("LongExposure + "+m.String()+" (modeled, A100, global batch 8, seq 512)",
			[]string{"Model", "1 GPU (ms)", "2 GPUs", "4 GPUs", "4-GPU efficiency"}, rows)
	}

	// Real CPU validation: 1 vs 2 simulated workers stay synchronized and
	// track the same loss.
	spec := o.simSpec(nn.ActReLU)
	batch, seq, _ := o.simGeometry()
	if batch%2 != 0 {
		batch = 2
	}
	batches := e2eBatches(spec, batch, seq, o.pick(2, 4), o.seed())

	mk := func() *nn.Transformer {
		rng := tensor.NewRNG(o.seed())
		mm := nn.NewTransformer(spec.Config, rng)
		peft.Apply(mm, peft.LoRA, peft.Options{}, rng.Split())
		return mm
	}
	single := &train.Engine{Model: mk(), Opt: peft.NewAdamW(1e-3, 0)}
	var singleLoss float64
	for _, b := range batches {
		singleLoss, _ = single.Step(b)
	}
	dp := train.NewDataParallel(mk(), 2, func() peft.Optimizer { return peft.NewAdamW(1e-3, 0) }, tensor.NewRNG(o.seed()+5))
	var dpLoss float64
	for _, b := range batches {
		dpLoss, _ = dp.Step(b)
	}
	r.AddSection("Real data-parallel validation (CPU, 2 workers)",
		[]string{"Metric", "Value"}, [][]string{
			{"Single-worker final loss", f3(singleLoss)},
			{"2-worker final loss", f3(dpLoss)},
			{"Replica drift", f3(dp.MaxReplicaDrift())},
		})

	r.AddNote("Shape to match (paper Fig 14): near-linear strong scaling for all model sizes and PEFT methods — Long Exposure optimizes compute only and adds no communication.")
	return r
}
