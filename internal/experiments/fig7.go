package experiments

import (
	"longexposure/internal/gpusim"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
)

// fig7Methods are the PEFT methods Figure 7 averages over.
var fig7Methods = []peft.Method{peft.LoRA, peft.Adapter, peft.BitFit}

// Fig7 regenerates Figure 7: execution time per batch and Long Exposure
// speedup for the OPT family across model sizes, sequence lengths and both
// GPU platforms, with OOM cells from the memory model. Times are modeled
// (roofline) at densities measured on the sim-scale pipeline.
func Fig7(o Options) *Report {
	r := &Report{ID: "fig7", Title: "Execution time per batch and speedup of OPT (modeled)"}
	cal := measureDensities(o, nn.ActReLU)

	type cell struct {
		spec  model.Spec
		batch int
	}
	grid := []cell{
		{model.OPT350M(), 4},
		{model.OPT1p3B(), 4},
		{model.OPT2p7B(), 2},
	}
	devices := []gpusim.Device{gpusim.A100(), gpusim.A6000()}
	seqs := []int{512, 1024}

	for _, dev := range devices {
		var rows [][]string
		for _, c := range grid {
			for _, seq := range seqs {
				row := []string{c.spec.Config.Name, itoa(seq), itoa(c.batch)}
				var sumSpeed float64
				var nOK int
				for _, m := range fig7Methods {
					dense := gpusim.StepShape{Spec: c.spec, Batch: c.batch, Seq: seq, Method: m}
					le := dense
					le.UseLongExposure = true
					le.AttnDensity = cal.AttnDensity
					le.MLPDensity = cal.MLPDensity

					if !gpusim.FitsOn(dev, gpusim.Footprint(dense, false)) {
						row = append(row, "OOM")
						continue
					}
					dt := gpusim.StepTotal(dev, dense)
					lt := gpusim.StepTotal(dev, le)
					row = append(row, msF(dt)+"→"+msF(lt)+" ("+speedup(dt, lt)+")")
					sumSpeed += dt / lt
					nOK++
				}
				if nOK > 0 {
					row = append(row, speedup(sumSpeed, float64(nOK)))
				} else {
					row = append(row, "OOM")
				}
				rows = append(rows, row)
			}
		}
		headers := []string{"Model", "Seq", "Batch"}
		for _, m := range fig7Methods {
			headers = append(headers, m.String()+" (ms, dense→LE)")
		}
		headers = append(headers, "Avg speedup")
		r.AddSection(dev.Name, headers, rows)
	}

	r.AddNote("Densities measured on the sim-scale pipeline: attention %.3f of the full block grid, MLP %.3f of neuron blocks (attn recall %.2f, MLP recall %.2f).",
		cal.AttnDensity, cal.MLPDensity, cal.AttnRecall, cal.MLPRecall)
	r.AddNote("Paper Fig 7 reference: OPT-1.3B/A100 averages 1.25x at seq 512 and 2.49x at seq 1024; speedup grows with sequence length on every platform.")
	return r
}

// Fig13 regenerates Figure 13: the GPT-2 scalability study. GeLU MLPs stay
// dense, so only attention-side optimizations apply (§VII-D) and speedups
// are smaller than OPT's.
func Fig13(o Options) *Report {
	r := &Report{ID: "fig13", Title: "Execution time per batch and speedup of GPT-2 (modeled, attention-only)"}
	cal := measureDensities(o, nn.ActGeLU)
	dev := gpusim.A100()

	grid := []struct {
		spec  model.Spec
		batch int
	}{
		{model.GPT2Large(), 8},
		{model.GPT2XL(), 4},
	}
	var rows [][]string
	for _, c := range grid {
		for _, seq := range []int{512, 1024} {
			row := []string{c.spec.Config.Name, itoa(seq), itoa(c.batch)}
			var sum float64
			var n int
			for _, m := range fig7Methods {
				dense := gpusim.StepShape{Spec: c.spec, Batch: c.batch, Seq: seq, Method: m}
				le := dense
				le.UseLongExposure = true
				le.AttnDensity = cal.AttnDensity
				le.MLPDensity = 1

				if !gpusim.FitsOn(dev, gpusim.Footprint(dense, false)) {
					row = append(row, "OOM")
					continue
				}
				dt := gpusim.StepTotal(dev, dense)
				lt := gpusim.StepTotal(dev, le)
				row = append(row, msF(dt)+"→"+msF(lt)+" ("+speedup(dt, lt)+")")
				sum += dt / lt
				n++
			}
			if n > 0 {
				row = append(row, speedup(sum, float64(n)))
			} else {
				row = append(row, "OOM")
			}
			rows = append(rows, row)
		}
	}
	headers := []string{"Model", "Seq", "Batch"}
	for _, m := range fig7Methods {
		headers = append(headers, m.String()+" (ms, dense→LE)")
	}
	headers = append(headers, "Avg speedup")
	r.AddSection("A100", headers, rows)
	r.AddNote("Attention density measured on the sim-scale GeLU pipeline: %.3f.", cal.AttnDensity)
	r.AddNote("Paper Fig 13 reference: average speedups up to 1.63x (GPT2-Large) and 1.55x (GPT2-XL) — smaller than OPT because the MLP stays dense.")
	return r
}
