package experiments

import (
	"longexposure/internal/core"
	"longexposure/internal/gpusim"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
)

// Table1 regenerates Table I: the per-phase fine-tuning time breakdown of
// OPT-1.3B across Full/LoRA/Adapter/BitFit/P-Tuning, showing that PEFT
// shrinks the optimizer step but leaves forward/backward dominant.
//
// Section 1 is measured on the sim-scale model (real CPU execution);
// section 2 is the paper-scale roofline model on the A100.
func Table1(o Options) *Report {
	r := &Report{ID: "table1", Title: "OPT-1.3B fine-tuning time breakdown (ms/batch)"}

	// Measured, sim scale.
	spec := o.simSpec(nn.ActReLU)
	batch, seq, blk := o.simGeometry()
	steps := o.pick(2, 6)
	var rows [][]string
	for _, m := range peft.AllMethods() {
		eng := core.NewBaseline(core.Config{Prime: true, Spec: spec, Method: m, Blk: blk, Seed: o.seed()})
		batches := e2eBatches(spec, batch, seq, steps, o.seed())
		eng.Run(batches[:1], 1) // warm-up (allocator, caches)
		res := eng.Run(batches, 1)
		pt := res.MeanStepTime()
		tot := pt.Total()
		rows = append(rows, []string{
			m.String(),
			ms(pt.Forward) + " (" + pct(float64(pt.Forward), float64(tot)) + ")",
			ms(pt.Backward) + " (" + pct(float64(pt.Backward), float64(tot)) + ")",
			ms(pt.Optim) + " (" + pct(float64(pt.Optim), float64(tot)) + ")",
			ms(tot),
		})
	}
	r.AddSection("Measured ("+spec.Config.Name+", CPU engine)",
		[]string{"Phase", "Forward", "Backward", "Optim. Step", "Total"}, rows)

	// Modeled, paper scale (OPT-1.3B, batch 4, seq 512, A100).
	dev := gpusim.A100()
	paper := model.OPT1p3B()
	rows = nil
	for _, m := range peft.AllMethods() {
		f, b, opt, _ := gpusim.StepTimes(dev, gpusim.StepShape{
			Spec: paper, Batch: 4, Seq: 512, Method: m,
		})
		tot := f + b + opt
		rows = append(rows, []string{
			m.String(),
			msF(f) + " (" + pct(f, tot) + ")",
			msF(b) + " (" + pct(b, tot) + ")",
			msF(opt) + " (" + pct(opt, tot) + ")",
			msF(tot),
		})
	}
	r.AddSection("Modeled (OPT-1.3B, batch 4, seq 512, A100 roofline)",
		[]string{"Phase", "Forward", "Backward", "Optim. Step", "Total"}, rows)

	r.AddNote("Paper Table I: Full 407.2 ms (optim 17.3%%); LoRA 334.6 ms (optim 0.6%%); " +
		"Adapter 292.9 ms; Bitfit 290.3 ms; P-Tuning 342.6 ms. " +
		"Shape to match: backward > forward for all methods; PEFT collapses only the optimizer phase.")
	return r
}

// Table2 regenerates Table II: the evaluation model zoo.
func Table2(Options) *Report {
	r := &Report{ID: "table2", Title: "Models for evaluation"}
	var rows [][]string
	for _, s := range model.All() {
		c := s.Config
		rows = append(rows, []string{
			c.Name, string(s.Family), f2(float64(s.ParamCount()) / 1e9), c.Act.String(),
			itoa(c.Layers), itoa(c.Dim), itoa(c.Heads), itoa(c.Hidden),
		})
	}
	r.AddSection("", []string{"Model", "Family", "Params (B)", "Act", "Layers", "Dim", "Heads", "Hidden"}, rows)
	r.AddNote("Paper Table II pairs: OPT 350M/1.3B/2.7B (batch 2/4, seq 512/1024) and GPT-2 774M/1.5B (batch 4/8, seq 512/1024).")
	return r
}

// Table3 regenerates Table III: the downstream tasks.
func Table3(Options) *Report {
	r := &Report{ID: "table3", Title: "Downstream tasks for evaluation"}
	var rows [][]string
	for _, t := range dataTasks() {
		rows = append(rows, []string{t.Name, t.Description, itoa(t.Choices)})
	}
	r.AddSection("", []string{"Task", "Description (synthetic analogue)", "Choices"}, rows)
	r.AddNote("Synthetic analogues preserve each task's decision shape (binary / 4-way choice over structured prompts); see DESIGN.md §2.")
	return r
}

// Fig10 regenerates Figure 10: the phase breakdown with and without Long
// Exposure across PEFT methods, including the predictor overhead bar —
// measured on the real CPU engine.
func Fig10(o Options) *Report {
	r := &Report{ID: "fig10", Title: "OPT-1.3B fine-tuning performance breakdown (sim-scale, measured)"}
	spec := o.simSpec(nn.ActReLU)
	batch, seq, blk := o.simGeometry()
	steps := o.pick(2, 10)

	methods := []peft.Method{peft.FullFT, peft.LoRA, peft.Adapter, peft.BitFit}
	var rows [][]string
	for _, m := range methods {
		// Dense baseline.
		base := core.NewBaseline(core.Config{Prime: true, Spec: spec, Method: m, Blk: blk, Seed: o.seed()})
		batches := e2eBatches(spec, batch, seq, steps, o.seed())
		dres := base.Run(batches, 1)
		dp := dres.MeanStepTime()

		// Long Exposure.
		sys := core.New(core.Config{Prime: true, Spec: spec, Method: m, Blk: blk, Seed: o.seed()})
		sys.PretrainPredictors(idsOf(batches, o.pick(2, 3)), predictorTrainCfg(o))
		lres := sys.Engine().Run(batches, 1)
		lp := lres.MeanStepTime()

		rows = append(rows,
			[]string{m.String() + " (PEFT)", ms(dp.Forward), ms(dp.Backward), ms(dp.Optim), "-", ms(dp.Total())},
			[]string{m.String() + " (+LongExposure)", ms(lp.Forward), ms(lp.Backward), ms(lp.Optim), ms(lp.Predict), ms(lp.Total())},
		)
	}
	r.AddSection("Per-step phase times (ms)",
		[]string{"Configuration", "Forward", "Backward", "Optim", "Predict", "Total"}, rows)
	r.AddNote("Shape to match (paper Fig 10): Long Exposure shortens forward and backward for every method; prediction overhead stays a small slice.")
	return r
}

func itoa(v int) string { return f0(float64(v)) }

func f0(x float64) string {
	return trimZeros(x)
}

func trimZeros(x float64) string {
	s := f2(x)
	for len(s) > 0 && (s[len(s)-1] == '0') {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

func predictorTrainCfg(o Options) (tc predictorTrainConfig) {
	tc.Epochs = o.pick(5, 20)
	tc.Seed = o.seed()
	return
}
