package experiments

import (
	"fmt"
	"time"

	"longexposure/internal/core"
	"longexposure/internal/exposer"
	"longexposure/internal/gpusim"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/sparse"
)

// Fig9 regenerates Figure 9: per-layer sparsity ratios and the performance
// obtained from them, for both multi-head attention and the MLP block.
// Sparsity ratios are measured on real activations of the sim-scale model;
// per-layer times are measured by running the actual CPU kernels dense vs
// sparse, plus a modeled GPU comparison that includes the unstructured
// "shadowy" execution mode.
func Fig9(o Options) *Report {
	r := &Report{ID: "fig9", Title: "Per-layer sparsity ratio and corresponding performance"}

	spec := o.simSpec(nn.ActReLU)
	batch, seq, blk := o.simGeometry()
	sys := core.New(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed()})
	batches := e2eBatches(spec, batch, seq, 2, o.seed())
	sys.PretrainPredictors(idsOf(batches, 1), predictorTrainCfg(o))

	// One dense forward to populate ground-truth activations.
	sys.Model.Forward(batches[0].Inputs, nil, nil)

	nb := seq / blk
	pool := sys.Exposer.Pool()
	lfLayout := pool.Get(exposer.LongformerPattern(), nb)
	bbLayout := pool.Get(exposer.BigBirdPattern(), nb)
	lfSparsity := exposer.AttentionSparsity([]*sparse.Layout{lfLayout})
	bbSparsity := exposer.AttentionSparsity([]*sparse.Layout{bbLayout})

	// Section 1: attention sparsity ratios per layer.
	var attnRows [][]string
	leLayouts := make([][]*sparse.Layout, len(sys.Model.Blocks))
	for li, b := range sys.Model.Blocks {
		probs := b.Attn.DenseProbs(nil)
		masks := sys.Exposer.HeadMasks(probs, batch, spec.Config.Heads)
		_, layouts := sys.Exposer.ExposeAttention(probs, batch, spec.Config.Heads)
		leLayouts[li] = layouts
		shadowy := exposer.AttentionSparsity([]*sparse.Layout{exposer.UniformMask(masks)})
		le := exposer.AttentionSparsity(layouts)
		attnRows = append(attnRows, []string{
			itoa(li), f3(shadowy), f3(lfSparsity), f3(bbSparsity), f3(le),
		})
	}
	r.AddSection("Multi-head attention sparsity ratio per layer (measured)",
		[]string{"Layer", "Shadowy (uniform)", "Longformer", "BigBird", "LongExposure"}, attnRows)

	// Section 2: MLP sparsity ratios per layer at threshold sweep.
	thresholds := []float64{0.01, 0.02, 0.03, 0.05}
	var mlpRows [][]string
	leBlocks := make([][]int, len(sys.Model.Blocks))
	for li, b := range sys.Model.Blocks {
		mask := b.MLP.ActivationMask()
		hidden := b.MLP.HiddenActivations()
		shadowy := exposer.ShadowyMLPSparsity(mask)
		row := []string{itoa(li), f3(shadowy)}
		for ti, th := range thresholds {
			blocks := exposer.FilterNeuronBlocksAt(hidden, blk, th)
			if ti == 1 { // the 2% default drives the timing section
				leBlocks[li] = blocks
			}
			row = append(row, f3(exposer.NeuronBlockSparsity(blocks, spec.Config.Hidden, blk)))
		}
		mlpRows = append(mlpRows, row)
	}
	r.AddSection("MLP block sparsity ratio per layer (measured; thresholds as %% of peak importance)",
		[]string{"Layer", "Shadowy (overall)", "Thold=1%", "Thold=2%", "Thold=3%", "Thold=5%"}, mlpRows)

	// Section 3: per-layer execution time, real CPU kernels.
	reps := o.pick(3, 20)
	var timeRows [][]string
	for li, b := range sys.Model.Blocks {
		x := b.LN1Out()
		dense := timeIt(reps, func() { b.Attn.Forward(x, batch, seq, nil, 0, nil) })
		sparseT := timeIt(reps, func() { b.Attn.Forward(x, batch, seq, leLayouts[li], blk, nil) })

		x2 := b.LN2Out()
		mDense := timeIt(reps, func() { b.MLP.Forward(x2, nil, 0, nil) })
		mSparse := timeIt(reps, func() { b.MLP.Forward(x2, leBlocks[li], blk, nil) })

		timeRows = append(timeRows, []string{
			itoa(li),
			ms(dense), ms(sparseT), speedup(dense.Seconds(), sparseT.Seconds()),
			ms(mDense), ms(mSparse), speedup(mDense.Seconds(), mSparse.Seconds()),
		})
	}
	r.AddSection("Per-layer forward time, real CPU kernels (mean of reps)",
		[]string{"Layer", "Attn dense", "Attn LE", "Speedup", "MLP dense", "MLP LE", "Speedup"}, timeRows)

	// Section 4: modeled GPU per-layer comparison including the
	// unstructured shadowy execution (which loses to dense — the paper's
	// key negative result for naive sparsity).
	dev := gpusim.A100()
	cal := measureDensities(o, nn.ActReLU)
	denseK := gpusim.ScoreKernels("scores", 4, 32, 1024, 64, 1, gpusim.KDenseGEMM)
	shadowK := gpusim.ScoreKernels("scores", 4, 32, 1024, 64, 0.6, gpusim.KUnstructured)
	leK := gpusim.ScoreKernels("scores", 4, 32, 1024, 64, cal.AttnDensity, gpusim.KBlockSparse)
	mlpDenseK := gpusim.MLPKernels("fc", 4096, 2048, 8192, 1, gpusim.KDenseGEMM)
	mlpShadowK := gpusim.MLPKernels("fc", 4096, 2048, 8192, 0.6, gpusim.KUnstructured)
	mlpLEK := gpusim.MLPKernels("fc", 4096, 2048, 8192, cal.MLPDensity, gpusim.KNeuronSparse)
	r.AddSection("Modeled GPU operator times (OPT-1.3B-shaped layer, A100)",
		[]string{"Operator", "Dense", "Shadowy (unstructured)", "LongExposure"},
		[][]string{
			{"Attention scores", ms(dev.Time(denseK)), ms(dev.Time(shadowK)), ms(dev.Time(leK))},
			{"MLP FC", ms(dev.Time(mlpDenseK)), ms(dev.Time(mlpShadowK)), ms(dev.Time(mlpLEK))},
		})

	r.AddNote("Shape to match (paper Fig 9): head-specific masks expose more sparsity than the uniform shadowy mask; Longformer/BigBird are sparser but pattern-blind; MLP sparsity rises with the threshold; unstructured shadowy execution is slower than dense while Long Exposure is faster (paper: 1.78x attention, 4.22x MLP).")
	return r
}

// timeIt measures the mean wall-clock of f over n runs.
func timeIt(n int, f func()) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start) / time.Duration(n)
}

var _ = fmt.Sprintf
