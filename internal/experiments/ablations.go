package experiments

import (
	"longexposure/internal/core"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
)

// Ablations probes the design choices DESIGN.md calls out, beyond the
// paper's own ablation study:
//
//  1. component contribution — Long Exposure with attention-only,
//     MLP-only, and both optimizations (real measured step times);
//  2. block-size sweep — the sparsity/overhead trade-off of the block
//     granularity;
//  3. mask-matching policy — mass-weighted vs block-count pool matching
//     (the mass-weighted rule is this implementation's mechanism for
//     honoring recall without collapsing to dense).
func Ablations(o Options) *Report {
	r := &Report{ID: "ablations", Title: "Design-choice ablations (measured, sim scale)"}

	spec := o.simSpec(nn.ActReLU)
	batch, seq, blk := o.simGeometry()
	batches := e2eBatches(spec, batch, seq, o.pick(2, 4), o.seed())
	calib := idsOf(batches, o.pick(2, 3))

	// 1. Component contribution.
	arm := func(disableAttn, disableMLP bool) float64 {
		cfg := core.Config{
			Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed(),
			DisableAttnSparsity: disableAttn, DisableMLPSparsity: disableMLP,
		}
		sys := core.New(cfg)
		sys.PretrainPredictors(calib, predictorTrainCfg(o))
		res := sys.Engine().Run(batches, 1)
		return res.MeanStepTime().Total().Seconds()
	}
	dense := core.NewBaseline(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed()})
	denseT := dense.Run(batches, 1).MeanStepTime().Total().Seconds()
	both := arm(false, false)
	attnOnly := arm(false, true)
	mlpOnly := arm(true, false)
	r.AddSection("Component contribution (ms/step)",
		[]string{"Configuration", "Step time", "Speedup vs dense"},
		[][]string{
			{"Dense baseline", msF(denseT), "1.00x"},
			{"Attention sparsity only", msF(attnOnly), speedup(denseT, attnOnly)},
			{"MLP sparsity only", msF(mlpOnly), speedup(denseT, mlpOnly)},
			{"Both (Long Exposure)", msF(both), speedup(denseT, both)},
		})

	// 2. Block-size sweep.
	var rows [][]string
	for _, b := range blockSizeSweep(seq) {
		cfg := core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: b, Seed: o.seed()}
		sys := core.New(cfg)
		sys.PretrainPredictors(calib, predictorTrainCfg(o))
		attnD, mlpD := sys.Densities(calib)
		res := sys.Engine().Run(batches, 1)
		rows = append(rows, []string{
			itoa(b), f3(attnD), f3(mlpD),
			msF(res.MeanStepTime().Total().Seconds()),
			speedup(denseT, res.MeanStepTime().Total().Seconds()),
		})
	}
	r.AddSection("Block-size sweep",
		[]string{"Blk", "Attn density", "MLP density", "Step time (ms)", "Speedup"}, rows)

	// 3. Matching policy: mass-weighted vs count-based recall.
	sys := core.New(core.Config{Prime: true, Spec: spec, Method: peft.LoRA, Blk: blk, Seed: o.seed()})
	sys.PretrainPredictors(calib, predictorTrainCfg(o))
	sys.Model.Forward(batches[0].Inputs, nil, nil)
	var massD, countD float64
	var n int
	for _, b := range sys.Model.Blocks {
		probs := b.Attn.DenseProbs(nil)
		masks, masses := sys.Exposer.HeadMasksWithMass(probs, batch, spec.Config.Heads)
		for h, m := range masks {
			_, lMass := sys.Exposer.MatchToPool(m, masses[h])
			_, lCount := sys.Exposer.MatchToPool(m, nil)
			massD += lMass.Density()
			countD += lCount.Density()
			n++
		}
	}
	r.AddSection("Pool-matching policy (mean matched layout density)",
		[]string{"Policy", "Density"},
		[][]string{
			{"Mass-weighted recall", f3(massD / float64(n))},
			{"Block-count recall", f3(countD / float64(n))},
		})

	r.AddNote("Expected shapes: both components beat either alone; very small blocks raise predictor/launch overhead while very large blocks blur the mask; mass-weighted matching yields sparser layouts at equal fidelity because low-mass straggler blocks no longer force a dense fallback.")
	return r
}

// blockSizeSweep picks block sizes dividing seq.
func blockSizeSweep(seq int) []int {
	var out []int
	for _, b := range []int{4, 8, 16, 32} {
		if seq%b == 0 && seq/b >= 2 {
			out = append(out, b)
		}
	}
	return out
}
