package experiments

import (
	"fmt"
	"sort"
)

// Driver regenerates one paper artifact.
type Driver func(Options) *Report

// Registry maps experiment ids to drivers.
var Registry = map[string]Driver{
	"ablations": Ablations,
	"fig4":      Fig4,
	"table1":    Table1,
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig13":     Fig13,
	"fig14":     Fig14,
}

// titles names each experiment without running it (drivers set the same
// title on their Report); Describe serves them to API listings.
var titles = map[string]string{
	"ablations": "Design-choice ablations (measured, sim scale)",
	"fig4":      "Shadowy sparsity: single-token vs sequence-level sparsity (measured)",
	"table1":    "OPT-1.3B fine-tuning time breakdown (ms/batch)",
	"table2":    "Models for evaluation",
	"table3":    "Downstream tasks for evaluation",
	"table4":    "Downstream accuracy with (w) and without (w/o) Long Exposure",
	"fig7":      "Execution time per batch and speedup of OPT (modeled)",
	"fig8":      "Memory footprints of OPT fine-tuning on A100 (modeled)",
	"fig9":      "Per-layer sparsity ratio and corresponding performance",
	"fig10":     "OPT-1.3B fine-tuning performance breakdown (sim-scale, measured)",
	"fig11":     "Fine-tuning loss curves and predictor visualization (measured)",
	"fig12":     "Dynamic operator performance vs dense across sparsity ratios (measured)",
	"fig13":     "Execution time per batch and speedup of GPT-2 (modeled, attention-only)",
	"fig14":     "Strong scalability of Long Exposure",
}

// Info describes one registered experiment without running it.
type Info struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Describe lists every registered experiment with its title, in stable
// order — the static catalogue behind the job service's GET /v1/experiments.
func Describe() []Info {
	out := make([]Info, 0, len(Registry))
	for _, id := range IDs() {
		out = append(out, Info{ID: id, Title: titles[id]})
	}
	return out
}

// IDs lists the registered experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Known reports whether id names a registered experiment — callers that
// want to skip gracefully (benchmarks, suite filters) check this instead of
// pattern-matching Run's error.
func Known(id string) bool {
	_, ok := Registry[id]
	return ok
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Report, error) {
	d, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return d(o), nil
}

// RunAll executes every experiment in a stable order.
func RunAll(o Options) []*Report {
	var out []*Report
	for _, id := range IDs() {
		out = append(out, Registry[id](o))
	}
	return out
}
