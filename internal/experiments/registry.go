package experiments

import (
	"fmt"
	"sort"
)

// Driver regenerates one paper artifact.
type Driver func(Options) *Report

// Registry maps experiment ids to drivers.
var Registry = map[string]Driver{
	"ablations": Ablations,
	"fig4":      Fig4,
	"table1":    Table1,
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig13":     Fig13,
	"fig14":     Fig14,
}

// IDs lists the registered experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Report, error) {
	d, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return d(o), nil
}

// RunAll executes every experiment in a stable order.
func RunAll(o Options) []*Report {
	var out []*Report
	for _, id := range IDs() {
		out = append(out, Registry[id](o))
	}
	return out
}
