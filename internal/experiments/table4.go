package experiments

import (
	"longexposure/internal/core"
	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

// Table4 regenerates Table IV: downstream accuracy after LoRA fine-tuning
// with and without Long Exposure, across three model sizes and the five
// Table III tasks. Real training, sim scale.
//
// Substitution (DESIGN.md §2): the paper fine-tunes on Alpaca and evaluates
// zero-shot; our sim models fine-tune on a mixed instruction-style training
// split of the same synthetic tasks and evaluate held-out examples — the
// comparison of interest (sparse vs dense accuracy delta) is preserved.
func Table4(o Options) *Report {
	r := &Report{ID: "table4", Title: "Downstream accuracy with (w) and without (w/o) Long Exposure"}

	sizes := table4Sizes(o)
	tasks := dataTasks()
	headers := []string{"Task", "Metric"}
	for _, s := range sizes {
		headers = append(headers, s.name+"-w/o", s.name+"-w")
	}

	// accuracies[task][size] = (dense, le)
	type pair struct{ dense, le float64 }
	acc := make([][]pair, len(tasks))
	for i := range acc {
		acc[i] = make([]pair, len(sizes))
	}
	nTest := o.pick(32, 96)

	for si, size := range sizes {
		dense, le := table4Arm(o, size.spec, nTest)
		for ti := range tasks {
			acc[ti][si] = pair{dense[ti], le[ti]}
		}
	}

	var rows [][]string
	var worstDrop float64
	for ti, task := range tasks {
		accRow := []string{task.Name, "Acc."}
		errRow := []string{"", "Stderr"}
		for si := range sizes {
			p := acc[ti][si]
			accRow = append(accRow, pctv(p.dense), pctv(p.le))
			errRow = append(errRow,
				pctv(train.StderrOfAccuracy(p.dense, nTest)),
				pctv(train.StderrOfAccuracy(p.le, nTest)))
			if drop := p.dense - p.le; drop > worstDrop {
				worstDrop = drop
			}
		}
		rows = append(rows, accRow, errRow)
	}
	r.AddSection("", headers, rows)
	r.AddNote("Worst accuracy drop from Long Exposure: %s (paper: ≤ ~2.8%% across Table IV).", pctv(worstDrop))
	r.AddNote("Paper reference points: OPT-1.3B PIQA 72.25%%→72.09%%, COPA 81%%→81%%, HellaSwag 42.08%%→42.11%%.")
	return r
}

type table4Size struct {
	name string
	spec model.Spec
}

func table4Sizes(o Options) []table4Size {
	if o.Quick {
		return []table4Size{
			{"sim350M", model.SimSmall(nn.ActReLU)},
		}
	}
	mk := func(name string, layers, dim, heads int) table4Size {
		return table4Size{name, model.Spec{Family: model.FamilyOPT, Config: nn.Config{
			Name: name, Vocab: 128, Dim: dim, Layers: layers, Heads: heads,
			Hidden: dim * 4, MaxSeq: 64, Act: nn.ActReLU,
		}}}
	}
	return []table4Size{
		mk("sim350M", 2, 32, 2),
		mk("sim1.3B", 3, 48, 4),
		mk("sim2.7B", 4, 64, 4),
	}
}

// table4Arm follows the paper's pipeline at sim scale: obtain a
// *pre-trained* backbone (full fine-tuning on a task mixture stands in for
// large-scale pre-training — LoRA on a random backbone with a frozen LM
// head cannot learn anything, just as it couldn't for the paper without the
// OPT checkpoint), then LoRA-fine-tune two clones of it — dense and Long
// Exposure — on a fresh split, and evaluate held-out accuracy per task.
func table4Arm(o Options, spec model.Spec, nTest int) (dense, le []float64) {
	tasks := dataTasks()
	seqLen := 16
	nTrain := o.pick(64, 128)

	mixture := func(offset uint64) []data.Example {
		var ex []data.Example
		for ti, task := range tasks {
			ex = append(ex, task.Generate(nTrain, spec.Config.Vocab, o.seed()+offset+uint64(ti))...)
		}
		shuffleExamples(ex, o.seed()+offset+99)
		return ex
	}

	// Stage 1: "pre-train" the backbone (full fine-tuning, all params).
	rng := tensor.NewRNG(o.seed())
	backbone := nn.NewTransformer(spec.Config, rng)
	model.PrimeSparsity(backbone, rng.Split(), 4)
	peft.Apply(backbone, peft.FullFT, peft.Options{}, rng.Split())
	preBatches := data.Batches(mixture(0), 8, seqLen)
	pre := &train.Engine{Model: backbone, Opt: peft.NewAdamW(3e-3, 0), ClipNorm: 1}
	pre.Run(preBatches, o.pick(3, 10))

	// Stage 2: LoRA fine-tuning on a fresh split, dense vs Long Exposure.
	ftBatches := data.Batches(mixture(500), 8, seqLen)
	epochs := o.pick(1, 3)

	evalArm := func(useLE bool) []float64 {
		cfg := core.Config{Base: backbone, Spec: spec, Method: peft.LoRA, Blk: 4,
			Seed: o.seed() + 7, LR: 1e-3, ClipNorm: 1}
		var eng *train.Engine
		var planner nn.Planner
		if useLE {
			sys := core.New(cfg)
			sys.PretrainPredictors(idsOf(ftBatches, o.pick(2, 4)), predictorTrainCfg(o))
			eng = sys.Engine()
			planner = sys.Planner
		} else {
			eng = core.NewBaseline(cfg)
		}
		eng.Run(ftBatches, epochs)

		var out []float64
		for ti, task := range tasks {
			testEx := task.Generate(nTest, spec.Config.Vocab, o.seed()+1000+uint64(ti))
			out = append(out, train.EvaluateTask(eng.Model, testEx, seqLen, planner))
		}
		return out
	}

	return evalArm(false), evalArm(true)
}

func shuffleExamples(ex []data.Example, seed uint64) {
	rng := tensor.NewRNG(seed)
	for i := len(ex) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ex[i], ex[j] = ex[j], ex[i]
	}
}
