// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each driver returns a Report that renders as markdown;
// cmd/longexp prints them and the root bench suite wraps them in testing.B
// benchmarks.
//
// Two evidence sources feed the reports, always labelled: `measured` rows
// come from real CPU execution of the engine/operators at sim scale;
// `modeled` rows come from internal/gpusim kernel traces at paper scale,
// parameterized by densities measured on the sim runs (DESIGN.md §2).
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Section is one table of a report.
type Section struct {
	Name    string
	Headers []string
	Rows    [][]string
}

// Report is one regenerated paper artifact.
type Report struct {
	ID       string // e.g. "table1", "fig7"
	Title    string
	Sections []Section
	Notes    []string
}

// AddSection appends a table.
func (r *Report) AddSection(name string, headers []string, rows [][]string) {
	r.Sections = append(r.Sections, Section{Name: name, Headers: headers, Rows: rows})
}

// AddNote appends a free-form note (assumptions, paper comparison).
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the report.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	for _, s := range r.Sections {
		if s.Name != "" {
			fmt.Fprintf(&b, "### %s\n\n", s.Name)
		}
		writeTable(&b, s.Headers, s.Rows)
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	if len(r.Notes) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

func writeTable(b *strings.Builder, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	b.WriteString("|")
	for i, h := range headers {
		b.WriteString(" " + pad(h, widths[i]) + " |")
	}
	b.WriteString("\n|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range rows {
		b.WriteString("|")
		for i, c := range row {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			b.WriteString(" " + pad(c, w) + " |")
		}
		b.WriteString("\n")
	}
}

// Formatting helpers shared by the drivers.

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func msF(seconds float64) string {
	return fmt.Sprintf("%.1f", seconds*1000)
}

func pct(part, total float64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/total)
}

func speedup(base, opt float64) string {
	if opt == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", base/opt)
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func pctv(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
