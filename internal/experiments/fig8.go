package experiments

import (
	"fmt"

	"longexposure/internal/gpusim"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
)

// Fig8 regenerates Figure 8: the memory footprint of OPT fine-tuning on the
// A100 across sequence lengths — dense baseline, Long Exposure, and Long
// Exposure (optimal) with inactive MLP weights offloaded to the host.
func Fig8(o Options) *Report {
	r := &Report{ID: "fig8", Title: "Memory footprints of OPT fine-tuning on A100 (modeled)"}
	cal := measureDensities(o, nn.ActReLU)
	dev := gpusim.A100()

	specs := []model.Spec{model.OPT350M(), model.OPT1p3B()}
	seqs := []int{512, 1024, 2048, 4096}

	for _, spec := range specs {
		var rows [][]string
		for _, seq := range seqs {
			dense := gpusim.StepShape{Spec: spec, Batch: 4, Seq: seq, Method: peft.LoRA}
			le := dense
			le.UseLongExposure = true
			le.AttnDensity = cal.AttnDensity
			le.MLPDensity = cal.MLPDensity

			fD := gpusim.Footprint(dense, false)
			fL := gpusim.Footprint(le, false)
			fO := gpusim.Footprint(le, true)

			row := []string{itoa(seq),
				gib(dev, fD), gib(dev, fL), gib(dev, fO),
				fmt.Sprintf("%.2fx", float64(fD.Total())/float64(fO.Total())),
			}
			rows = append(rows, row)
		}
		r.AddSection(spec.Config.Name+" (batch 4)",
			[]string{"Seq", "PEFT dense (GiB)", "LongExposure", "LongExposure(optimal)", "Reduction"}, rows)
	}

	r.AddNote("OOM marks footprints beyond the A100's 80 GiB. Head-specific masks turn the O(s²) attention activations into O(s·k); offloading inactive MLP blocks trims resident parameters further.")
	r.AddNote("Paper Fig 8 reference: up to 2.77x reduction (OPT-350M) and 1.69x (OPT-1.3B); dense baselines OOM first as sequences grow.")
	return r
}

func gib(dev gpusim.Device, m gpusim.MemBreakdown) string {
	s := fmt.Sprintf("%.1f", gpusim.GiB(m.Total()))
	if !gpusim.FitsOn(dev, m) {
		return s + " (OOM)"
	}
	return s
}
