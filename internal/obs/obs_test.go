package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value %v, want 3.5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative counter add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge value %v, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 1000} {
		h.Observe(v)
	}
	snap := r.Gather()
	if len(snap) != 1 || len(snap[0].Points) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	p := snap[0].Points[0]
	// le=1 inclusive: 0.5, 1 → 2; le=10: 1.5, 10 → 2; le=100: 99 → 1; +Inf: 1000.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if p.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, p.Buckets[i], w, p.Buckets)
		}
	}
	if p.Count != 6 || p.Sum != 0.5+1+1.5+10+99+1000 {
		t.Fatalf("count %d sum %v", p.Count, p.Sum)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("LogBuckets = %v, want %v", b, want)
		}
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "route", "code")
	a := v.With("/x", "2xx")
	b := v.With("/x", "2xx")
	if a != b {
		t.Fatal("With returned distinct children for identical labels")
	}
	a.Inc()
	if got, ok := r.Value("reqs_total", "/x", "2xx"); !ok || got != 1 {
		t.Fatalf("Value = %v, %v", got, ok)
	}
	// Label-value pairs that would collide if joined naively must not.
	v.With("a\x00b", "c").Inc()
	v.With("a", "b\x00c").Inc()
	if n := len(r.Gather()[0].Points); n != 3 {
		t.Fatalf("expected 3 children, got %d", n)
	}
}

func TestDuplicateAndInvalidRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.Gauge("dup_total", "y") },
		"bad name":      func() { r.Counter("bad-name", "y") },
		"bad label":     func() { r.CounterVec("ok_total", "y", "bad-key") },
		"empty buckets": func() { r.Histogram("h_empty", "y", nil) },
		"bad bounds":    func() { r.Histogram("h_desc", "y", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// promLine matches a valid sample line: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("lexp_test_total", "counts \"things\"\nnewline", "kind")
	c.With(`quo"te`).Add(2)
	g := r.Gauge("lexp_level", "level")
	g.Set(-1.5)
	h := r.Histogram("lexp_lat_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		samples[line[:sp]] = line[sp+1:]
	}

	for series, want := range map[string]string{
		`lexp_test_total{kind="quo\"te"}`:     "2",
		`lexp_level`:                          "-1.5",
		`lexp_lat_seconds_bucket{le="0.001"}`: "1",
		`lexp_lat_seconds_bucket{le="0.01"}`:  "2",
		`lexp_lat_seconds_bucket{le="+Inf"}`:  "3",
		`lexp_lat_seconds_count`:              "3",
	} {
		if got := samples[series]; got != want {
			t.Fatalf("series %s = %q, want %q\nbody:\n%s", series, got, want, body)
		}
	}
	if sum, err := strconv.ParseFloat(samples["lexp_lat_seconds_sum"], 64); err != nil || math.Abs(sum-5.0055) > 1e-9 {
		t.Fatalf("histogram sum %q", samples["lexp_lat_seconds_sum"])
	}
	if !strings.Contains(body, `# HELP lexp_test_total counts "things"\nnewline`) {
		t.Fatalf("help escaping wrong:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE lexp_lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE:\n%s", body)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	g := r.Gauge("lvl", "l")
	h := r.Histogram("d", "d", DurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%v g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
}

// TestHotPathZeroAlloc pins the package's core contract: updating any
// instrument through a held handle performs zero heap allocations.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zc_total", "z")
	g := r.Gauge("zg", "z")
	h := r.Histogram("zh", "z", DurationBuckets)
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(float64(i))
		h.Observe(float64(i) * 1e-5)
		i++
	}); n != 0 {
		t.Fatalf("instrument updates allocate %v per op, want 0", n)
	}
}

func TestBundlesRegisterDisjointNames(t *testing.T) {
	// Every domain bundle on one registry: any name collision panics.
	r := NewRegistry()
	NewTrainMetrics(r)
	NewInferMetrics(r)
	NewJobsMetrics(r)
	NewHTTPMetrics(r)
	NewGatewayMetrics(r)
	NewRegistryMetrics(r)
	sm := NewSparsityMetrics(r)
	lm := NewLimitMetrics(r)
	sm.SetAttn(0, 0.25)
	sm.SetMLP(3, 0.5)
	ep := lm.Endpoint("/v1/generate")
	ep.Admitted.Inc()
	ep.ShedQueueFull.Inc()
	if v, ok := r.Value("lexp_sparse_attn_density", "0"); !ok || v != 0.25 {
		t.Fatalf("sparse attn density = %v, %v", v, ok)
	}
	// After a layer's first observation the handle is cached: repeated
	// sets are allocation-free (they run on the training hot path).
	if n := testing.AllocsPerRun(500, func() { sm.SetAttn(0, 0.5); sm.SetMLP(3, 0.25) }); n != 0 {
		t.Fatalf("warm sparsity sets allocate %v per op, want 0", n)
	}
	if v, ok := r.Value("lexp_limit_shed_total", "/v1/generate", "queue_full"); !ok || v != 1 {
		t.Fatalf("shed counter = %v, %v", v, ok)
	}
}
