package obs

import (
	"bufio"
	"compress/gzip"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments, one sample line per
// child, histogram children expanded into cumulative _bucket series plus
// _sum and _count. Exposition takes snapshots under the family locks but
// never blocks instrument updates (those are atomics).
func (r *Registry) WritePrometheus(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics writes the same families in OpenMetrics-flavored text:
// identical sample lines plus `# {trace_id="…"} value timestamp` exemplar
// annotations on histogram bucket series and a terminating `# EOF`. This
// is the path scrapers negotiate (Accept: application/openmetrics-text)
// to ingest the trace-id exemplars recorded by ObserveExemplar.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.Gather() {
		bw.WriteString("# HELP ")
		bw.WriteString(s.Name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(s.Help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(s.Name)
		bw.WriteByte(' ')
		bw.WriteString(string(s.Kind))
		bw.WriteByte('\n')
		for _, p := range s.Points {
			if s.Kind == KindHistogram {
				writeHistogram(bw, s, p, openMetrics)
				continue
			}
			bw.WriteString(s.Name)
			bw.WriteString(p.Labels)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(p.Value))
			bw.WriteByte('\n')
		}
	}
	if openMetrics {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

// writeHistogram expands one histogram child into its cumulative bucket
// series. Existing labels are spliced together with the le label; on the
// OpenMetrics path, buckets carrying an exemplar gain the annotation.
func writeHistogram(bw *bufio.Writer, s Snapshot, p Point, openMetrics bool) {
	var cum uint64
	for i, c := range p.Buckets {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		bw.WriteString(s.Name)
		bw.WriteString("_bucket")
		bw.WriteString(spliceLabel(p.Labels, `le="`+le+`"`))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		if openMetrics && i < len(p.Exemplars) && p.Exemplars[i] != nil {
			ex := p.Exemplars[i]
			bw.WriteString(` # {trace_id="`)
			bw.WriteString(escapeLabel(ex.TraceID))
			bw.WriteString(`"} `)
			bw.WriteString(formatValue(ex.Value))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64))
		}
		bw.WriteByte('\n')
	}
	bw.WriteString(s.Name)
	bw.WriteString("_sum")
	bw.WriteString(p.Labels)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(p.Sum))
	bw.WriteByte('\n')
	bw.WriteString(s.Name)
	bw.WriteString("_count")
	bw.WriteString(p.Labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(p.Count, 10))
	bw.WriteByte('\n')
}

// spliceLabel appends one rendered k="v" pair to a pre-rendered label set.
func spliceLabel(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry at GET /metrics. Clients that negotiate
// OpenMetrics (Accept contains application/openmetrics-text) receive the
// exemplar-annotated exposition; everyone else gets classic text format.
// Orthogonally, clients sending Accept-Encoding: gzip get a compressed
// body — exposition bodies grow with every registered family, and the
// content negotiation above is unaffected by the transfer encoding.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var out io.Writer = w
		var gz *gzip.Writer
		if strings.Contains(req.Header.Get("Accept-Encoding"), "gzip") {
			w.Header().Set("Content-Encoding", "gzip")
			gz = gzip.NewWriter(w)
			out = gz
		}
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(out)
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(out)
		}
		if gz != nil {
			_ = gz.Close()
		}
	})
}
