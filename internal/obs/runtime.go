package obs

import (
	"runtime"
	"sync"
)

// RuntimeMetrics exposes Go runtime health under lexp_runtime_*. Nothing
// is collected on a schedule: a Gather hook reads runtime stats only when
// the registry is actually scraped, so an idle daemon pays nothing and a
// scraped one pays one ReadMemStats per scrape.
type RuntimeMetrics struct {
	Goroutines  *Gauge   // lexp_runtime_goroutines
	GoMaxProcs  *Gauge   // lexp_runtime_gomaxprocs
	HeapBytes   *Gauge   // lexp_runtime_heap_bytes
	HeapObjects *Gauge   // lexp_runtime_heap_objects
	GCPause     *Counter // lexp_runtime_gc_pause_seconds_total
	GCCycles    *Counter // lexp_runtime_gc_cycles_total

	// Last observed cumulative values, so the monotonic runtime totals
	// translate into counter deltas. mu serializes concurrent scrapes.
	mu          sync.Mutex
	lastPauseNs uint64
	lastNumGC   uint32
}

// RegisterRuntimeMetrics registers the runtime instruments and the lazy
// gather hook that populates them at scrape time.
func RegisterRuntimeMetrics(r *Registry) *RuntimeMetrics {
	m := &RuntimeMetrics{
		Goroutines:  r.Gauge("lexp_runtime_goroutines", "Live goroutines at scrape time."),
		GoMaxProcs:  r.Gauge("lexp_runtime_gomaxprocs", "GOMAXPROCS at scrape time."),
		HeapBytes:   r.Gauge("lexp_runtime_heap_bytes", "Bytes of allocated heap objects at scrape time."),
		HeapObjects: r.Gauge("lexp_runtime_heap_objects", "Allocated heap objects at scrape time."),
		GCPause:     r.Counter("lexp_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause."),
		GCCycles:    r.Counter("lexp_runtime_gc_cycles_total", "Completed GC cycles."),
	}
	r.OnGather(m.collect)
	return m
}

func (m *RuntimeMetrics) collect() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Goroutines.Set(float64(runtime.NumGoroutine()))
	m.GoMaxProcs.Set(float64(runtime.GOMAXPROCS(0)))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapBytes.Set(float64(ms.HeapAlloc))
	m.HeapObjects.Set(float64(ms.HeapObjects))
	if ms.PauseTotalNs >= m.lastPauseNs {
		m.GCPause.Add(float64(ms.PauseTotalNs-m.lastPauseNs) / 1e9)
	}
	m.lastPauseNs = ms.PauseTotalNs
	if ms.NumGC >= m.lastNumGC {
		m.GCCycles.Add(float64(ms.NumGC - m.lastNumGC))
	}
	m.lastNumGC = ms.NumGC
}
