package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// unescapeLabel reverses the exposition escaping — the round-trip half a
// scraper performs. strconv.Unquote handles exactly the \\, \", and \n
// escapes the format defines.
func unescapeLabel(t *testing.T, quoted string) string {
	t.Helper()
	s, err := strconv.Unquote(`"` + quoted + `"`)
	if err != nil {
		t.Fatalf("unquoting label %q: %v", quoted, err)
	}
	return s
}

// TestExpositionLabelEscapingRoundTrip pins the escaping contract for
// label values carrying quotes, backslashes, and newlines: the exposed
// line must stay one line, and a standard unescape must recover the
// original value byte for byte.
func TestExpositionLabelEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`with"quote`,
		`back\slash`,
		"new\nline",
		"all\\three\"at\nonce",
		`trailing\`,
	}
	r := NewRegistry()
	vec := r.CounterVec("escape_total", "escaping", "tenant")
	for i, v := range hostile {
		vec.With(v).Add(float64(i + 1))
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	got := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `escape_total{tenant="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `escape_total{tenant="`)
		end := strings.LastIndex(rest, `"}`)
		if end < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest[end+2:]), 64)
		if err != nil {
			t.Fatalf("parsing value in %q: %v", line, err)
		}
		got[unescapeLabel(t, rest[:end])] = val
	}
	for i, v := range hostile {
		val, ok := got[v]
		if !ok {
			t.Errorf("label %q did not round-trip; exposition:\n%s", v, out)
			continue
		}
		if want := float64(i + 1); val != want {
			t.Errorf("label %q: value %v, want %v", v, val, want)
		}
	}
	// The newline-bearing values must not have produced extra lines: every
	// non-comment line is a complete sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "escape_total") {
			t.Errorf("stray exposition line %q (unescaped newline?)", line)
		}
	}
}

// TestHistogramExemplarExposition pins the exemplar plumbing: an
// ObserveExemplar lands its trace id on the matching bucket, the
// OpenMetrics rendering carries it with a `# {...}` annotation plus
// `# EOF`, the classic text format omits it, and the /metrics handler
// negotiates between the two on Accept.
func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "00112233445566778899aabbccddeeff")

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	text := om.String()
	if !strings.Contains(text, `# {trace_id="00112233445566778899aabbccddeeff"} 0.5`) {
		t.Fatalf("OpenMetrics output missing exemplar:\n%s", text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("OpenMetrics output missing # EOF terminator:\n%s", text)
	}
	// The exemplar must annotate the le="1" bucket (0.5 falls there), not
	// the le="0.1" one.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `le="0.1"`) && strings.Contains(line, "trace_id") {
			t.Fatalf("exemplar attached to wrong bucket: %q", line)
		}
	}

	var classic strings.Builder
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "trace_id") {
		t.Fatalf("classic text format must not carry exemplars:\n%s", classic.String())
	}

	// Negotiation: explicit OpenMetrics Accept gets exemplars; default
	// gets classic text.
	reqOM := httptest.NewRecorder()
	q := httptest.NewRequest("GET", "/metrics", nil)
	q.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	r.Handler().ServeHTTP(reqOM, q)
	if ct := reqOM.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("negotiated content-type %q", ct)
	}
	if !strings.Contains(reqOM.Body.String(), "trace_id") {
		t.Fatalf("negotiated OpenMetrics body missing exemplar")
	}
	reqTxt := httptest.NewRecorder()
	r.Handler().ServeHTTP(reqTxt, httptest.NewRequest("GET", "/metrics", nil))
	if ct := reqTxt.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("default content-type %q", ct)
	}
	if strings.Contains(reqTxt.Body.String(), "trace_id") {
		t.Fatalf("default body must not carry exemplars")
	}
}

// TestRuntimeMetricsGatherLazily pins the runtime-gauge satellite: the
// lexp_runtime_* instruments register up front but only populate when the
// registry is actually gathered, and the GC counters report monotonic
// cumulative values.
func TestRuntimeMetricsGatherLazily(t *testing.T) {
	r := NewRegistry()
	m := RegisterRuntimeMetrics(r)
	if v := m.Goroutines.Value(); v != 0 {
		t.Fatalf("goroutines gauge %v before first gather, want 0 (lazy)", v)
	}
	snaps := r.Gather()
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	for _, name := range []string{
		"lexp_runtime_goroutines",
		"lexp_runtime_gomaxprocs",
		"lexp_runtime_heap_bytes",
		"lexp_runtime_heap_objects",
		"lexp_runtime_gc_pause_seconds_total",
		"lexp_runtime_gc_cycles_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing runtime family %s", name)
		}
	}
	if v := m.Goroutines.Value(); v < 1 {
		t.Errorf("goroutines gauge %v after gather, want >= 1", v)
	}
	if v := m.HeapBytes.Value(); v <= 0 {
		t.Errorf("heap bytes gauge %v after gather, want > 0", v)
	}
	cycles := m.GCCycles.Value()
	r.Gather() // a second scrape must not double-count cumulative deltas
	if after := m.GCCycles.Value(); after < cycles {
		t.Errorf("gc cycles went backwards: %v -> %v", cycles, after)
	}
}
