package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"testing"
)

func TestPeekLookupsFindExistingChildrenOnly(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("peek_c", "h", "route", "code")
	gv := r.GaugeVec("peek_g", "h", "layer")
	hv := r.HistogramVec("peek_h", "h", DurationBuckets, "route")

	cv.With("/a", "2xx").Add(3)
	gv.With("0").Set(0.5)
	hv.With("/a").Observe(0.01)

	if c, ok := r.PeekCounterKey("peek_c", LabelKey("/a", "2xx")); !ok || c.Value() != 3 {
		t.Fatalf("PeekCounterKey existing child: ok=%v", ok)
	}
	if _, ok := r.PeekCounterKey("peek_c", LabelKey("/a", "5xx")); ok {
		t.Fatal("PeekCounterKey must not report a child that was never created")
	}
	// Peeking must not create the child either.
	if _, ok := r.Value("peek_c", "/a", "5xx"); ok {
		t.Fatal("peek created a child")
	}
	if g, ok := r.PeekGaugeKey("peek_g", LabelKey("0")); !ok || g.Value() != 0.5 {
		t.Fatalf("PeekGaugeKey: ok=%v", ok)
	}
	if h, ok := r.PeekHistogramKey("peek_h", LabelKey("/a")); !ok || h.Count() != 1 {
		t.Fatalf("PeekHistogramKey: ok=%v", ok)
	}
	// Wrong kind and unknown family both miss.
	if _, ok := r.PeekCounterKey("peek_g", LabelKey("0")); ok {
		t.Fatal("kind mismatch must miss")
	}
	if _, ok := r.PeekGaugeKey("nope", ""); ok {
		t.Fatal("unknown family must miss")
	}
}

func TestHistogramCountAtMost(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cam", "h", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	// Buckets: <=0.001 has 2 (0.0005 and the inclusive 0.001), <=0.01 adds
	// 0.005, <=0.1 adds 0.05, <=1 adds 0.5, +Inf holds 5.
	cases := []struct {
		bound float64
		want  uint64
	}{
		{0.0001, 0}, // below the first bound: no whole bucket qualifies
		{0.001, 2},
		{0.002, 2}, // inside a bucket: that bucket is excluded
		{0.01, 3},
		{0.1, 4},
		{1, 5},
		{100, 5}, // beyond the last finite bound: +Inf never qualifies
	}
	for _, c := range cases {
		if got := h.CountAtMost(c.bound); got != c.want {
			t.Errorf("CountAtMost(%g) = %d, want %d", c.bound, got, c.want)
		}
	}
	if len(h.Bounds()) != 4 {
		t.Fatalf("Bounds() len = %d", len(h.Bounds()))
	}
}

func TestSumValues(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("sum_g", "h", "layer")
	for i := 0; i < 4; i++ {
		gv.With(strconv.Itoa(i)).Set(0.25)
	}
	sum, n, ok := r.SumValues("sum_g")
	if !ok || n != 4 || sum != 1 {
		t.Fatalf("SumValues gauges = (%g, %d, %v)", sum, n, ok)
	}
	c := r.Counter("sum_c", "h")
	c.Add(7)
	sum, n, ok = r.SumValues("sum_c")
	if !ok || n != 1 || sum != 7 {
		t.Fatalf("SumValues counter = (%g, %d, %v)", sum, n, ok)
	}
	r.Histogram("sum_h", "h", DurationBuckets)
	if _, _, ok := r.SumValues("sum_h"); ok {
		t.Fatal("SumValues must reject histogram families")
	}
	if _, _, ok := r.SumValues("missing"); ok {
		t.Fatal("SumValues must reject unknown families")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	bi := RegisterBuildInfo(r, "v1.2.3")
	if bi.Version != "v1.2.3" || bi.GoVersion == "" || bi.Commit == "" {
		t.Fatalf("BuildInfo = %+v", bi)
	}
	v, ok := r.Value("lexp_build_info", bi.Version, bi.Commit, bi.GoVersion)
	if !ok || v != 1 {
		t.Fatalf("lexp_build_info = (%g, %v), want (1, true)", v, ok)
	}
	if Build("").Version != "dev" {
		t.Fatal("empty version must default to dev")
	}
}

// TestConcurrentGatherHooksAndVecChildren exercises Gather (and the
// exposition writer behind it) racing lazy OnGather hooks, live child
// creation on vec families, concurrent peeks, and even concurrent
// family registration — the invariants -race must hold for a registry
// scraped while the daemon is under load.
func TestConcurrentGatherHooksAndVecChildren(t *testing.T) {
	r := NewRegistry()
	lazy := r.Gauge("lazy_g", "set only from a gather hook")
	var hookRuns sync.Map
	r.OnGather(func() {
		lazy.Set(1)
		hookRuns.Store("ran", true)
	})
	cv := r.CounterVec("race_c", "h", "k")
	hv := r.HistogramVec("race_h", "h", DurationBuckets, "k")
	gv := r.GaugeVec("race_g", "h", "k")

	const writers, scrapers, iters = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := strconv.Itoa((w*iters + i) % 16)
				cv.With(k).Inc()
				hv.With(k).Observe(float64(i) * 1e-6)
				gv.With(k).Set(float64(i))
			}
		}(w)
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				if snaps := r.Gather(); len(snaps) == 0 {
					t.Error("Gather returned no families")
					return
				}
				r.WritePrometheus(io.Discard)
				r.Value("race_c", strconv.Itoa(i%16))
				r.PeekCounterKey("race_c", LabelKey(strconv.Itoa(i%16)))
				r.SumValues("race_g")
			}
		}(s)
	}
	// Registration concurrent with scrapes: new families must appear
	// atomically, never tearing an in-progress Gather.
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r.Counter(fmt.Sprintf("late_c_%d_%d", n, i), "h").Inc()
			}
		}(n)
	}
	wg.Wait()
	if _, ok := hookRuns.Load("ran"); !ok {
		t.Fatal("OnGather hook never ran")
	}
	if lazy.Value() != 1 {
		t.Fatal("lazy gauge not set by hook")
	}
	sum, n, ok := r.SumValues("race_c")
	if !ok || n != 16 || sum != float64(writers*iters) {
		t.Fatalf("race_c sum = (%g, %d, %v), want (%d, 16, true)", sum, n, ok, writers*iters)
	}
}
