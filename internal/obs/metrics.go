package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the repository's metric catalogue: one constructor per
// subsystem, each registering its instruments under stable lexp_* names
// and returning pre-resolved handles so hot paths never touch the
// registry again. README "Operations" documents the full catalogue;
// changes here should keep that table in sync.

// TrainMetrics instruments train.Engine's step loop.
type TrainMetrics struct {
	Steps       *Counter   // lexp_train_steps_total
	Tokens      *Counter   // lexp_train_tokens_total
	StepSeconds *Histogram // lexp_train_step_seconds
	Loss        *Gauge     // lexp_train_loss

	// Per-phase wall-clock totals (Figure 10's bars, as counters).
	PhaseForward, PhaseBackward, PhaseOptim, PhasePredict *Counter

	// Workspace-arena traffic: gets that reused a pooled buffer vs. ones
	// that had to allocate. A healthy steady state adds only to gets.
	ArenaGets, ArenaMisses *Counter
}

// NewTrainMetrics registers the training instruments.
func NewTrainMetrics(r *Registry) *TrainMetrics {
	phase := r.CounterVec("lexp_train_phase_seconds_total",
		"Cumulative wall-clock per fine-tuning phase.", "phase")
	return &TrainMetrics{
		Steps:       r.Counter("lexp_train_steps_total", "Completed fine-tuning steps."),
		Tokens:      r.Counter("lexp_train_tokens_total", "Tokens consumed by fine-tuning steps."),
		StepSeconds: r.Histogram("lexp_train_step_seconds", "Wall-clock of one fine-tuning step.", DurationBuckets),
		Loss:        r.Gauge("lexp_train_loss", "Loss of the most recent fine-tuning step."),

		PhaseForward:  phase.With("forward"),
		PhaseBackward: phase.With("backward"),
		PhaseOptim:    phase.With("optim"),
		PhasePredict:  phase.With("predict"),

		ArenaGets:   r.Counter("lexp_train_arena_gets_total", "Workspace-arena buffer gets during training steps."),
		ArenaMisses: r.Counter("lexp_train_arena_misses_total", "Workspace-arena gets that had to allocate a fresh buffer."),
	}
}

// InferMetrics instruments infer.Engine's continuous-batching scheduler.
type InferMetrics struct {
	SchedulerSteps *Counter   // lexp_infer_scheduler_steps_total
	Tokens         *Counter   // lexp_infer_tokens_total
	Admitted       *Counter   // lexp_infer_admitted_total
	BatchOccupancy *Histogram // lexp_infer_batch_occupancy
	Active         *Gauge     // lexp_infer_active_sequences
	QueueDepth     *Gauge     // lexp_infer_queue_depth
	KVRows         *Gauge     // lexp_infer_kv_rows
	SeqSeconds     *Histogram // lexp_infer_sequence_seconds

	// Batch-level contextual-sparsity accounting: how many planned
	// (sparse) steps the scheduler ran, and the mean realized densities
	// across the last batch's plans — the serving-wide companions of the
	// per-layer lexp_sparse_serving_* gauges.
	SparseSteps     *Counter // lexp_infer_sparse_steps_total
	PlanMLPDensity  *Gauge   // lexp_infer_plan_mlp_density
	PlanAttnDensity *Gauge   // lexp_infer_plan_attn_density

	retired                                               *CounterVec
	retStop, retLength, retMaxSeq, retCancelled, retError *Counter
}

// NewInferMetrics registers the inference instruments.
func NewInferMetrics(r *Registry) *InferMetrics {
	m := &InferMetrics{
		SchedulerSteps: r.Counter("lexp_infer_scheduler_steps_total", "Continuous-batching scheduler iterations."),
		Tokens:         r.Counter("lexp_infer_tokens_total", "Tokens emitted by the generation engine."),
		Admitted:       r.Counter("lexp_infer_admitted_total", "Sequences admitted into the decode batch."),
		BatchOccupancy: r.Histogram("lexp_infer_batch_occupancy", "Active sequences per scheduler step.", CountBuckets),
		Active:         r.Gauge("lexp_infer_active_sequences", "Sequences currently decoding."),
		QueueDepth:     r.Gauge("lexp_infer_queue_depth", "Submitted sequences awaiting admission."),
		KVRows:         r.Gauge("lexp_infer_kv_rows", "KV-cache rows resident across active sequences."),
		SeqSeconds:     r.Histogram("lexp_infer_sequence_seconds", "Sequence lifetime from admission to retirement.", DurationBuckets),

		SparseSteps:     r.Counter("lexp_infer_sparse_steps_total", "Decode steps executed under a contextual-sparsity plan."),
		PlanMLPDensity:  r.Gauge("lexp_infer_plan_mlp_density", "Mean realized MLP block density across the last batch's plans (1 = dense)."),
		PlanAttnDensity: r.Gauge("lexp_infer_plan_attn_density", "Mean realized attention block density across the last batch's plans (1 = dense)."),

		retired: r.CounterVec("lexp_infer_retired_total",
			"Sequences retired from the decode batch, by finish reason.", "reason"),
	}
	m.retStop = m.retired.With("stop")
	m.retLength = m.retired.With("length")
	m.retMaxSeq = m.retired.With("max_seq")
	m.retCancelled = m.retired.With("cancelled")
	m.retError = m.retired.With("error")
	return m
}

// Retired returns the cached retirement counter for a finish reason.
func (m *InferMetrics) Retired(reason string) *Counter {
	switch reason {
	case "stop":
		return m.retStop
	case "length":
		return m.retLength
	case "max_seq":
		return m.retMaxSeq
	case "cancelled":
		return m.retCancelled
	default:
		return m.retError
	}
}

// JobsMetrics instruments the jobs.Store scheduler and worker pool.
type JobsMetrics struct {
	Submitted     *Counter   // lexp_jobs_submitted_total
	CacheHits     *Counter   // lexp_jobs_cache_hits_total
	QueueDepth    *Gauge     // lexp_jobs_queue_depth
	Running       *Gauge     // lexp_jobs_running
	WaitSeconds   *Histogram // lexp_jobs_wait_seconds
	RunSeconds    *Histogram // lexp_jobs_run_seconds
	Events        *Counter   // lexp_jobs_events_total
	EventsDropped *Counter   // lexp_jobs_events_dropped_total

	Done, Failed, Cancelled *Counter // lexp_jobs_completed_total{status}
}

// NewJobsMetrics registers the job-service instruments.
func NewJobsMetrics(r *Registry) *JobsMetrics {
	completed := r.CounterVec("lexp_jobs_completed_total",
		"Jobs reaching a terminal status.", "status")
	return &JobsMetrics{
		Submitted:     r.Counter("lexp_jobs_submitted_total", "Jobs accepted by Submit."),
		CacheHits:     r.Counter("lexp_jobs_cache_hits_total", "Submissions served instantly from the result cache."),
		QueueDepth:    r.Gauge("lexp_jobs_queue_depth", "Jobs queued awaiting a worker."),
		Running:       r.Gauge("lexp_jobs_running", "Jobs currently executing."),
		WaitSeconds:   r.Histogram("lexp_jobs_wait_seconds", "Queue wait from submission to worker pickup.", DurationBuckets),
		RunSeconds:    r.Histogram("lexp_jobs_run_seconds", "Job execution wall-clock.", DurationBuckets),
		Events:        r.Counter("lexp_jobs_events_total", "Events published on job streams."),
		EventsDropped: r.Counter("lexp_jobs_events_dropped_total", "Events dropped from slow subscribers' bounded backlogs."),

		Done:      completed.With("done"),
		Failed:    completed.With("failed"),
		Cancelled: completed.With("cancelled"),
	}
}

// HTTPMetrics instruments the serve mux, per route.
type HTTPMetrics struct {
	Requests *CounterVec   // lexp_http_requests_total{route,code}
	Latency  *HistogramVec // lexp_http_request_seconds{route}
	InFlight *Gauge        // lexp_http_inflight
}

// NewHTTPMetrics registers the HTTP instruments.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec("lexp_http_requests_total",
			"HTTP requests served, by route pattern and status class.", "route", "code"),
		Latency: r.HistogramVec("lexp_http_request_seconds",
			"HTTP request latency, by route pattern.", DurationBuckets, "route"),
		InFlight: r.Gauge("lexp_http_inflight", "HTTP requests currently being served."),
	}
}

// GatewayMetrics instruments the serve gateway's model and adapter caches.
type GatewayMetrics struct {
	AdapterHits      *Counter  // lexp_gateway_adapter_cache_hits_total
	AdapterMisses    *Counter  // lexp_gateway_adapter_cache_misses_total
	AdapterEvictions *Counter  // lexp_gateway_adapter_cache_evictions_total
	Engines          *Gauge    // lexp_gateway_engines
	BaseWeightBytes  *GaugeVec // lexp_base_weight_bytes{precision}
}

// NewGatewayMetrics registers the gateway instruments.
func NewGatewayMetrics(r *Registry) *GatewayMetrics {
	return &GatewayMetrics{
		AdapterHits:      r.Counter("lexp_gateway_adapter_cache_hits_total", "Generate requests served from the compiled-adapter cache."),
		AdapterMisses:    r.Counter("lexp_gateway_adapter_cache_misses_total", "Generate requests that loaded and compiled an adapter artifact."),
		AdapterEvictions: r.Counter("lexp_gateway_adapter_cache_evictions_total", "Compiled adapters evicted after artifact deletion."),
		Engines:          r.Gauge("lexp_gateway_engines", "Distinct base-model engines resident in the gateway."),
		BaseWeightBytes: r.GaugeVec("lexp_base_weight_bytes",
			"Resident weight bytes of base models in the gateway, by storage precision.", "precision"),
	}
}

// RegistryMetrics instruments the adapter artifact store.
type RegistryMetrics struct {
	Adapters  *Gauge   // lexp_registry_adapters
	Publishes *Counter // lexp_registry_publishes_total
	Loads     *Counter // lexp_registry_loads_total
	Deletes   *Counter // lexp_registry_deletes_total
}

// NewRegistryMetrics registers the artifact-store instruments.
func NewRegistryMetrics(r *Registry) *RegistryMetrics {
	return &RegistryMetrics{
		Adapters:  r.Gauge("lexp_registry_adapters", "Adapter artifacts resident in the registry."),
		Publishes: r.Counter("lexp_registry_publishes_total", "Adapter artifacts published (including idempotent republish)."),
		Loads:     r.Counter("lexp_registry_loads_total", "Adapter artifact weight loads from disk."),
		Deletes:   r.Counter("lexp_registry_deletes_total", "Adapter artifacts deleted."),
	}
}

// SparsityMetrics exposes the exposer/predictor path's per-layer density
// — the live view of how much shadowy sparsity the run recovers. Set
// calls land on the training hot path (once per planned layer per step),
// so resolved gauge handles are cached in an atomically-published slice:
// after a layer's first observation, updates are lock-free and
// allocation-free, honoring the package design rule that With belongs at
// construction time.
type SparsityMetrics struct {
	attn, mlp *GaugeVec

	mu    sync.Mutex               // guards slice growth
	attnG atomic.Pointer[[]*Gauge] // snapshot of per-layer handles
	mlpG  atomic.Pointer[[]*Gauge]
}

// NewSparsityMetrics registers the sparsity instruments.
func NewSparsityMetrics(r *Registry) *SparsityMetrics {
	return &SparsityMetrics{
		attn: r.GaugeVec("lexp_sparse_attn_density",
			"Mean predicted attention block density (fraction of blocks kept), by layer.", "layer"),
		mlp: r.GaugeVec("lexp_sparse_mlp_density",
			"Predicted MLP neuron-block density (fraction of blocks kept), by layer.", "layer"),
	}
}

// NewServingSparsityMetrics registers the serving-side density gauges —
// the same shape as the training instruments but a distinct
// lexp_sparse_serving_* family, because one registry typically carries
// both a jobs.Store (which registers the training family) and the
// inference gateway, and registration is panic-on-duplicate by design.
func NewServingSparsityMetrics(r *Registry) *SparsityMetrics {
	return &SparsityMetrics{
		attn: r.GaugeVec("lexp_sparse_serving_attn_density",
			"Live serving attention block density planned per decode step (fraction of KV blocks read), by layer.", "layer"),
		mlp: r.GaugeVec("lexp_sparse_serving_mlp_density",
			"Live serving MLP neuron-block density planned per decode step (fraction of blocks computed), by layer.", "layer"),
	}
}

// layerGauge returns the cached handle for a layer, resolving and
// publishing a grown snapshot on first use.
func (m *SparsityMetrics) layerGauge(cache *atomic.Pointer[[]*Gauge], vec *GaugeVec, layer int) *Gauge {
	if layer < 0 {
		return vec.With(strconv.Itoa(layer)) // degenerate; never hot
	}
	if gs := cache.Load(); gs != nil && layer < len(*gs) {
		return (*gs)[layer]
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var cur []*Gauge
	if gs := cache.Load(); gs != nil {
		cur = *gs
	}
	if layer < len(cur) { // another goroutine grew it meanwhile
		return cur[layer]
	}
	grown := make([]*Gauge, layer+1)
	copy(grown, cur)
	for i := len(cur); i <= layer; i++ {
		grown[i] = vec.With(strconv.Itoa(i))
	}
	cache.Store(&grown)
	return grown[layer]
}

// SetAttn records one layer's mean attention density.
func (m *SparsityMetrics) SetAttn(layer int, density float64) {
	m.layerGauge(&m.attnG, m.attn, layer).Set(density)
}

// SetMLP records one layer's MLP block density.
func (m *SparsityMetrics) SetMLP(layer int, density float64) {
	m.layerGauge(&m.mlpG, m.mlp, layer).Set(density)
}

// SLOMetrics instruments the SLO engine (internal/slo): the evaluation
// loop, per-objective burn rates and error budgets, and the alert state
// machine. Per-objective handles are resolved once at engine
// construction (ObjectiveSLOMetrics), keeping the evaluation tick
// allocation-free.
type SLOMetrics struct {
	Evaluations  *Counter // lexp_slo_evaluations_total
	AlertsFiring *Gauge   // lexp_slo_alerts_firing

	budget      *GaugeVec   // lexp_slo_error_budget_remaining{objective}
	burn        *GaugeVec   // lexp_slo_burn_rate{objective,window}
	state       *GaugeVec   // lexp_slo_alert_state{objective}
	transitions *CounterVec // lexp_slo_alert_transitions_total{objective,state}
}

// NewSLOMetrics registers the SLO instruments.
func NewSLOMetrics(r *Registry) *SLOMetrics {
	return &SLOMetrics{
		Evaluations:  r.Counter("lexp_slo_evaluations_total", "SLO engine evaluation ticks."),
		AlertsFiring: r.Gauge("lexp_slo_alerts_firing", "Objectives currently in the firing state."),
		budget: r.GaugeVec("lexp_slo_error_budget_remaining",
			"Fraction of the error budget left over the budget window (1 = untouched, <= 0 = exhausted).", "objective"),
		burn: r.GaugeVec("lexp_slo_burn_rate",
			"Error-budget burn rate per evaluation window (1 = burning exactly the budget).", "objective", "window"),
		state: r.GaugeVec("lexp_slo_alert_state",
			"Alert state machine position per objective (0 inactive, 1 pending, 2 firing, 3 resolved).", "objective"),
		transitions: r.CounterVec("lexp_slo_alert_transitions_total",
			"Alert state transitions, by objective and entered state.", "objective", "state"),
	}
}

// ObjectiveSLOMetrics is SLOMetrics resolved for one objective: every
// handle pre-fetched so the evaluation tick stays allocation-free.
type ObjectiveSLOMetrics struct {
	BudgetRemaining *Gauge
	State           *Gauge

	BurnFastShort, BurnFastLong *Gauge
	BurnSlowShort, BurnSlowLong *Gauge

	ToPending, ToFiring, ToResolved *Counter
}

// Objective resolves the per-objective handles.
func (m *SLOMetrics) Objective(name string) *ObjectiveSLOMetrics {
	return &ObjectiveSLOMetrics{
		BudgetRemaining: m.budget.With(name),
		State:           m.state.With(name),
		BurnFastShort:   m.burn.With(name, "fast_short"),
		BurnFastLong:    m.burn.With(name, "fast_long"),
		BurnSlowShort:   m.burn.With(name, "slow_short"),
		BurnSlowLong:    m.burn.With(name, "slow_long"),
		ToPending:       m.transitions.With(name, "pending"),
		ToFiring:        m.transitions.With(name, "firing"),
		ToResolved:      m.transitions.With(name, "resolved"),
	}
}

// AccountMetrics instruments the wide-event accounting plane
// (internal/account): one emission per completed generate request,
// fine-tune job and train run, with the resource vector folded into
// global counters. Every handle is resolved at construction — emission
// happens on the sequence-retire path and must stay allocation-free.
type AccountMetrics struct {
	events *CounterVec // lexp_account_events_total{kind}
	saved  *CounterVec // lexp_flops_saved_total{layer_kind}

	EvGenerate, EvFinetune, EvExperiment, EvTrain *Counter

	PromptTokens *Counter // lexp_account_prompt_tokens_total
	OutputTokens *Counter // lexp_account_output_tokens_total
	DenseFLOPs   *Counter // lexp_account_flops_dense_total
	ExecFLOPs    *Counter // lexp_account_flops_executed_total
	SavedMLP     *Counter // lexp_flops_saved_total{layer_kind="mlp"}
	SavedAttn    *Counter // lexp_flops_saved_total{layer_kind="attn"}
	Shed         *Counter // lexp_account_shed_total
	LogBytes     *Counter // lexp_account_log_bytes_total
	LogErrors    *Counter // lexp_account_log_errors_total
	Segments     *Counter // lexp_account_segments_total
}

// NewAccountMetrics registers the accounting instruments.
func NewAccountMetrics(r *Registry) *AccountMetrics {
	m := &AccountMetrics{
		events: r.CounterVec("lexp_account_events_total",
			"Wide events emitted into the accounting plane, by event kind.", "kind"),
		saved: r.CounterVec("lexp_flops_saved_total",
			"FLOPs saved by predictor-gated contextual sparsity vs the dense-equivalent run, by gated layer kind.", "layer_kind"),
		PromptTokens: r.Counter("lexp_account_prompt_tokens_total", "Prompt tokens across accounted requests."),
		OutputTokens: r.Counter("lexp_account_output_tokens_total", "Output tokens across accounted requests."),
		DenseFLOPs:   r.Counter("lexp_account_flops_dense_total", "Dense-equivalent FLOPs across accounted work."),
		ExecFLOPs:    r.Counter("lexp_account_flops_executed_total", "FLOPs actually executed across accounted work."),
		Shed:         r.Counter("lexp_account_shed_total", "Accounted requests shed before admission."),
		LogBytes:     r.Counter("lexp_account_log_bytes_total", "Bytes appended to the segmented event log."),
		LogErrors:    r.Counter("lexp_account_log_errors_total", "Event-log write or rotation failures (events stay in the ring)."),
		Segments:     r.Counter("lexp_account_segments_total", "Event-log segments sealed by rotation."),
	}
	m.EvGenerate = m.events.With("generate")
	m.EvFinetune = m.events.With("finetune")
	m.EvExperiment = m.events.With("experiment")
	m.EvTrain = m.events.With("train")
	m.SavedMLP = m.saved.With("mlp")
	m.SavedAttn = m.saved.With("attn")
	return m
}

// Event returns the cached emission counter for an event kind.
func (m *AccountMetrics) Event(kind string) *Counter {
	switch kind {
	case "generate":
		return m.EvGenerate
	case "finetune":
		return m.EvFinetune
	case "experiment":
		return m.EvExperiment
	default:
		return m.EvTrain
	}
}

// LimitMetrics instruments internal/limit: every admission and shed
// decision, in-flight and waiting levels, and wait latency, per guarded
// endpoint. Tenants tracks the rate limiter's live tenant-bucket count.
type LimitMetrics struct {
	admitted    *CounterVec
	shed        *CounterVec
	inflight    *GaugeVec
	waiting     *GaugeVec
	waitSeconds *HistogramVec

	Tenants *Gauge // lexp_limit_tenants
}

// NewLimitMetrics registers the traffic-control instruments.
func NewLimitMetrics(r *Registry) *LimitMetrics {
	return &LimitMetrics{
		admitted: r.CounterVec("lexp_limit_admitted_total",
			"Requests admitted by the admission controller.", "endpoint"),
		shed: r.CounterVec("lexp_limit_shed_total",
			"Requests shed, by endpoint and reason.", "endpoint", "reason"),
		inflight: r.GaugeVec("lexp_limit_inflight",
			"Admitted requests currently in flight.", "endpoint"),
		waiting: r.GaugeVec("lexp_limit_waiting",
			"Requests parked in the bounded admission wait queue.", "endpoint"),
		waitSeconds: r.HistogramVec("lexp_limit_wait_seconds",
			"Admission wait-queue latency for admitted requests.", DurationBuckets, "endpoint"),
		Tenants: r.Gauge("lexp_limit_tenants", "Live tenant token buckets."),
	}
}

// EndpointLimitMetrics is LimitMetrics resolved for one endpoint: every
// handle pre-fetched so admission decisions stay allocation-free.
type EndpointLimitMetrics struct {
	Admitted *Counter

	ShedRateLimited *Counter
	ShedQueueFull   *Counter
	ShedDraining    *Counter
	ShedTimeout     *Counter
	ShedCancelled   *Counter

	InFlight    *Gauge
	Waiting     *Gauge
	WaitSeconds *Histogram
}

// Endpoint resolves the per-endpoint handles.
func (m *LimitMetrics) Endpoint(endpoint string) *EndpointLimitMetrics {
	return &EndpointLimitMetrics{
		Admitted:        m.admitted.With(endpoint),
		ShedRateLimited: m.shed.With(endpoint, "rate_limited"),
		ShedQueueFull:   m.shed.With(endpoint, "queue_full"),
		ShedDraining:    m.shed.With(endpoint, "draining"),
		ShedTimeout:     m.shed.With(endpoint, "timeout"),
		ShedCancelled:   m.shed.With(endpoint, "cancelled"),
		InFlight:        m.inflight.With(endpoint),
		Waiting:         m.waiting.With(endpoint),
		WaitSeconds:     m.waitSeconds.With(endpoint),
	}
}
