// Package obs is the repository's observability substrate: a
// dependency-free metrics registry whose instruments — counters, gauges,
// and histograms with fixed log-scale buckets — are safe for concurrent
// use and allocation-free to update, so the zero-alloc steady state the
// training and decode hot paths earned in earlier PRs survives being
// measured. Exposition is Prometheus text format (expo.go); the domain
// instrument bundles every subsystem registers into live in metrics.go.
//
// Design rules:
//
//   - Updating an instrument (Inc/Add/Set/Observe) never allocates and
//     never takes a lock: values are atomics, histogram bucket search is
//     a binary search over a fixed bounds slice.
//   - Registration (Counter, GaugeVec.With, …) may allocate and lock; do
//     it once at construction time and keep the returned handle.
//   - Metric and label names are validated at registration and panic on
//     misuse — a malformed exposition is a programming error, not a
//     runtime condition.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is an instrument family's type, as exposed in the TYPE comment.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds instrument families in registration order. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
	hooks    []func() // run at the top of every Gather (lazy collectors)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric with a fixed label-key set; labeled
// children are created on demand and live forever (cardinality is the
// caller's contract — label values must be bounded).
type family struct {
	name   string
	help   string
	kind   Kind
	keys   []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children []*child
	byLabels map[string]*child
}

// child is one (label-values) instance of a family. Exactly one of the
// typed heads is used, matching the family kind.
type child struct {
	labels string // pre-rendered {k="v",…} or ""
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (r *Registry) family(name, help string, kind Kind, bounds []float64, keys []string) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, k := range keys {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label key %q on %s", k, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		keys: append([]string(nil), keys...), bounds: bounds,
		byLabels: map[string]*child{},
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// get returns (creating if needed) the child for the given label values.
func (f *family) get(values []string) *child {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.byLabels[key]; ok {
		return ch
	}
	ch := &child{labels: renderLabels(f.keys, values), values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		ch.c = &Counter{}
	case KindGauge:
		ch.g = &Gauge{}
	case KindHistogram:
		ch.h = newHistogram(f.bounds)
	}
	f.byLabels[key] = ch
	f.children = append(f.children, ch)
	return ch
}

// labelKey encodes label values unambiguously (length-prefixed, so a
// separator byte inside a value cannot collide with the join).
func labelKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ---- unlabeled instruments ----

// Counter registers an unlabeled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).c
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).g
}

// Histogram registers an unlabeled histogram over the given ascending
// upper bounds (a final +Inf bucket is implicit). The bounds slice is
// retained; do not mutate it.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, KindHistogram, checkBounds(name, bounds), nil).get(nil).h
}

// ---- labeled instruments ----

// CounterVec registers a counter family with the given label keys.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, nil, keys)}
}

// With returns the counter for the given label values, creating it on
// first use. Cache the handle on hot paths — With locks and may allocate.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec registers a gauge family with the given label keys.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, nil, keys)}
}

// With returns the gauge for the given label values (see CounterVec.With).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec registers a histogram family with the given label keys.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family over shared bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, checkBounds(name, bounds), keys)}
}

// With returns the histogram for the given label values (see CounterVec.With).
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

func checkBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending at %d", name, i))
		}
	}
	return bounds
}

// ---- instrument value types ----

// Counter is a monotonically increasing float64. All methods are
// lock-free and allocation-free.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds a non-negative delta; negative deltas panic (counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter cannot decrease")
	}
	addFloat(&c.bits, d)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64 level. All methods are lock-free and
// allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative deltas allowed).
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (upper bounds are
// inclusive, Prometheus-style) and tracks their sum. Observe is lock-free
// and allocation-free: a binary search over the bounds plus three atomics.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	n         atomic.Uint64
	sum       atomic.Uint64              // float64 bits
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1; last write wins per bucket
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.n.Add(1)
	addFloat(&h.sum, v)
}

// Exemplar links one observation to the trace that produced it, so a slow
// bucket in a latency histogram points straight at a span tree in
// /debug/traces. Exposed on the OpenMetrics exposition path only.
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// ObserveExemplar is Observe plus an exemplar attached to the bucket the
// value lands in (last write wins). It allocates one Exemplar, so it
// belongs on request-scoped paths where the caller is already sampled —
// never inside the zero-alloc step loops, which use plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	addFloat(&h.sum, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the histogram's bucket upper bounds. The slice is
// shared and must not be mutated.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// CountAtMost returns the cumulative number of observations that landed
// in buckets whose upper bound is <= bound — the "good events" count a
// latency objective reads every evaluation tick. The answer is
// bucketized: a bound falling strictly inside a bucket excludes that
// whole bucket. Lock-free and allocation-free.
func (h *Histogram) CountAtMost(bound float64) uint64 {
	i := sort.SearchFloat64s(h.bounds, bound)
	if i < len(h.bounds) && h.bounds[i] == bound {
		i++
	}
	var n uint64
	for j := 0; j < i; j++ {
		n += h.counts[j].Load()
	}
	return n
}

// LogBuckets returns n strictly ascending upper bounds starting at min
// and growing by factor — the fixed log-scale bucket layout every
// histogram in this repo uses (a final +Inf bucket is implicit).
func LogBuckets(min, factor float64, n int) []float64 {
	if min <= 0 || factor <= 1 || n < 1 {
		panic("obs: LogBuckets wants min > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the shared latency layout: 1µs to ~33s in ×2 steps.
// Step latencies, HTTP latencies, queue waits and sequence lifetimes all
// land comfortably inside it; anything slower is the +Inf bucket.
var DurationBuckets = LogBuckets(1e-6, 2, 26)

// CountBuckets is the shared small-count layout (batch occupancy, queue
// depths): 1 to 512 in ×2 steps.
var CountBuckets = LogBuckets(1, 2, 10)

// ---- snapshots ----

// Point is one (labels → value) sample of a family.
type Point struct {
	LabelValues []string
	Labels      string // pre-rendered {k="v",…}, "" when unlabeled

	Value     float64     // counter total / gauge level
	Count     uint64      // histogram observation count
	Sum       float64     // histogram sum
	Buckets   []uint64    // histogram per-bucket (non-cumulative) counts
	Exemplars []*Exemplar // histogram per-bucket exemplars (entries may be nil)
}

// Snapshot is a consistent copy of one family.
type Snapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Keys   []string
	Bounds []float64
	Points []Point
}

// OnGather registers a hook run at the start of every Gather, before any
// family is snapshotted. Hooks are how lazily-collected metrics (Go
// runtime stats, cache sizes) pay their cost only at scrape time: the
// hook sets ordinary gauges, Gather reads them like any other instrument.
// Hooks must not register new metrics or call Gather.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Gather snapshots every family in registration order.
func (r *Registry) Gather() []Snapshot {
	r.mu.RLock()
	hooks := r.hooks
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}

	out := make([]Snapshot, 0, len(families))
	for _, f := range families {
		s := Snapshot{Name: f.name, Help: f.help, Kind: f.kind, Keys: f.keys, Bounds: f.bounds}
		f.mu.Lock()
		children := append([]*child(nil), f.children...)
		f.mu.Unlock()
		for _, ch := range children {
			p := Point{LabelValues: ch.values, Labels: ch.labels}
			switch f.kind {
			case KindCounter:
				p.Value = ch.c.Value()
			case KindGauge:
				p.Value = ch.g.Value()
			case KindHistogram:
				p.Count = ch.h.Count()
				p.Sum = ch.h.Sum()
				p.Buckets = make([]uint64, len(ch.h.counts))
				p.Exemplars = make([]*Exemplar, len(ch.h.counts))
				for i := range ch.h.counts {
					p.Buckets[i] = ch.h.counts[i].Load()
					p.Exemplars[i] = ch.h.exemplars[i].Load()
				}
			}
			s.Points = append(s.Points, p)
		}
		out = append(out, s)
	}
	return out
}

// Value returns the current value of a counter or gauge by name and
// label values — a convenience for tests and readiness checks; it returns
// false when the family or child does not exist.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	ch, ok := f.byLabels[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch f.kind {
	case KindCounter:
		return ch.c.Value(), true
	case KindGauge:
		return ch.g.Value(), true
	default:
		return float64(ch.h.Count()), true
	}
}

// ---- live lookups ----
//
// Gather copies everything and therefore allocates; the SLO engine's
// steady-state evaluation tick must not. These lookups resolve live
// instrument handles by name and precomputed label key without creating
// anything and without allocating, so a reader can retry them every
// tick until the instrumented code path first runs (e.g. a "5xx" status
// child on a healthy server may never exist at all).

// LabelKey precomputes the unambiguous child key for a label-value
// tuple, for use with the Peek*Key lookups. Compute it once at
// configuration time; the lookups themselves are then allocation-free.
func LabelKey(values ...string) string { return labelKey(values) }

// peek returns the live child for (name, key), or nil when the family
// is absent, of a different kind, or the child does not exist yet.
func (r *Registry) peek(name, key string, kind Kind) *child {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok || f.kind != kind {
		return nil
	}
	f.mu.Lock()
	ch := f.byLabels[key]
	f.mu.Unlock()
	return ch
}

// PeekCounterKey returns the live counter registered under name with
// child key LabelKey(labelValues...), without creating it. ok stays
// false until the instrumented path first touches the child.
func (r *Registry) PeekCounterKey(name, key string) (*Counter, bool) {
	if ch := r.peek(name, key, KindCounter); ch != nil {
		return ch.c, true
	}
	return nil, false
}

// PeekGaugeKey is PeekCounterKey for gauges.
func (r *Registry) PeekGaugeKey(name, key string) (*Gauge, bool) {
	if ch := r.peek(name, key, KindGauge); ch != nil {
		return ch.g, true
	}
	return nil, false
}

// PeekHistogramKey is PeekCounterKey for histograms.
func (r *Registry) PeekHistogramKey(name, key string) (*Histogram, bool) {
	if ch := r.peek(name, key, KindHistogram); ch != nil {
		return ch.h, true
	}
	return nil, false
}

// SumValues sums every live child of a counter or gauge family and
// reports how many children exist. It is the allocation-free way to
// fold a whole family (e.g. the mean per-layer serving density) without
// snapshotting it; ok is false for unknown or histogram families.
func (r *Registry) SumValues(name string) (sum float64, n int, ok bool) {
	r.mu.RLock()
	f, found := r.byName[name]
	r.mu.RUnlock()
	if !found || f.kind == KindHistogram {
		return 0, 0, false
	}
	f.mu.Lock()
	for _, ch := range f.children {
		if f.kind == KindCounter {
			sum += ch.c.Value()
		} else {
			sum += ch.g.Value()
		}
		n++
	}
	f.mu.Unlock()
	return sum, n, true
}
