package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the version string baked in
// at link time (or "dev"), the VCS revision embedded by the Go
// toolchain, and the Go version that compiled it.
type BuildInfo struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
}

// Build resolves the binary's build metadata. version is the
// link-time/flag-provided version string; empty means "dev".
func Build(version string) BuildInfo {
	if version == "" {
		version = "dev"
	}
	bi := BuildInfo{Version: version, Commit: "unknown", GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				bi.Commit = s.Value
				if len(bi.Commit) > 12 {
					bi.Commit = bi.Commit[:12]
				}
			}
		}
	}
	return bi
}

// RegisterBuildInfo registers the lexp_build_info info-style gauge: a
// constant 1 whose labels carry the binary's identity, so dashboards
// and alerts can join every other series against the deployed version.
func RegisterBuildInfo(r *Registry, version string) BuildInfo {
	bi := Build(version)
	r.GaugeVec("lexp_build_info",
		"Build metadata of the running binary; the value is always 1.",
		"version", "commit", "go_version").
		With(bi.Version, bi.Commit, bi.GoVersion).Set(1)
	return bi
}
