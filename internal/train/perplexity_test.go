package train

import (
	"math"
	"testing"

	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

func TestPerplexityDropsWithTraining(t *testing.T) {
	r := tensor.NewRNG(90)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.FullFT, peft.Options{}, r.Split())
	batches := copyTaskBatches(64, 2, 8, 8, 91)

	before := Perplexity(m, batches, nil)
	// An untrained model over a 64-token vocabulary sits near uniform.
	if before < 20 || before > 200 {
		t.Fatalf("untrained perplexity %v implausible for vocab 64", before)
	}

	e := &Engine{Model: m, Opt: peft.NewAdamW(3e-3, 0), ClipNorm: 1}
	e.Run(batches, 8)
	after := Perplexity(m, batches, nil)
	if after >= before/2 {
		t.Fatalf("perplexity did not halve: %v → %v", before, after)
	}
}

func TestPerplexityEmptySupervision(t *testing.T) {
	r := tensor.NewRNG(92)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	tg := make([]int, 8)
	for i := range tg {
		tg[i] = nn.IgnoreIndex
	}
	b := data.Batch{Inputs: [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}, Targets: [][]int{tg}}
	if p := Perplexity(m, []data.Batch{b}, nil); !math.IsInf(p, 1) {
		t.Fatalf("perplexity of unsupervised batch = %v, want +Inf", p)
	}
}

func TestPerplexityConsistentWithLoss(t *testing.T) {
	r := tensor.NewRNG(93)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	batches := copyTaskBatches(64, 2, 8, 2, 94)
	logits := m.Forward(batches[0].Inputs, nil, nil)
	loss, _ := nn.CrossEntropy(logits, m.FlattenTargets(batches[0].Targets))
	ppl := Perplexity(m, batches[:1], nil)
	if math.Abs(math.Log(ppl)-loss) > 1e-6 {
		t.Fatalf("log(ppl) %v != loss %v", math.Log(ppl), loss)
	}
}
