package train

import (
	"math"

	"longexposure/internal/data"
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

// Perplexity evaluates exp(mean NLL) over the supervised positions of the
// batches, without updating the model — the language-modeling quality
// metric for generation workloads like E2E.
func Perplexity(m *nn.Transformer, batches []data.Batch, planner nn.Planner) float64 {
	var totalLoss float64
	var n int
	ws := tensor.NewArena() // per-batch workspace, recycled across batches
	for _, b := range batches {
		logits := m.Forward(b.Inputs, planner, ws)
		flat := m.FlattenTargetsIn(ws, b.Targets)
		loss, _ := nn.CrossEntropyIn(ws, logits, flat)
		count := 0
		for _, t := range flat {
			if t != nn.IgnoreIndex {
				count++
			}
		}
		ws.Release()
		totalLoss += loss * float64(count)
		n += count
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(totalLoss / float64(n))
}
