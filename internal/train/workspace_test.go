package train

import (
	"sync"
	"testing"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/parallel"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

// newWorkspaceTestEngine builds a deterministic LoRA engine on the small
// sim config; noWS selects the allocating fallback path.
func newWorkspaceTestEngine(seed uint64, noWS bool) *Engine {
	r := tensor.NewRNG(seed)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())
	return &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0), NoWorkspace: noWS}
}

// TestWorkspaceLossesBitIdenticalToAllocatingPath is the refactor's core
// contract: the engine's arena path and the NoWorkspace (seed-style
// allocating) path must produce the exact same loss sequence, bit for bit.
func TestWorkspaceLossesBitIdenticalToAllocatingPath(t *testing.T) {
	run := func(noWS bool) []float64 {
		e := newWorkspaceTestEngine(81, noWS)
		batches := copyTaskBatches(64, 2, 8, 6, 9)
		return e.Run(batches, 2).Losses
	}
	ws, noWS := run(false), run(true)
	if len(ws) != len(noWS) || len(ws) == 0 {
		t.Fatalf("loss counts %d vs %d", len(ws), len(noWS))
	}
	for i := range ws {
		if ws[i] != noWS[i] {
			t.Fatalf("step %d: workspace loss %v != allocating loss %v", i, ws[i], noWS[i])
		}
	}
}

// TestWorkspaceGradientsBitIdentical drives one full step on two engines
// with identical weights — one arena, one allocating — and asserts every
// parameter (post-optimizer) matches exactly.
func TestWorkspaceGradientsBitIdentical(t *testing.T) {
	a := newWorkspaceTestEngine(82, false)
	b := newWorkspaceTestEngine(82, true)
	batches := copyTaskBatches(64, 2, 8, 2, 5)
	for _, batch := range batches {
		la, _ := a.Step(batch)
		lb, _ := b.Step(batch)
		if la != lb {
			t.Fatalf("losses diverge: %v vs %v", la, lb)
		}
	}
	pa, pb := a.Model.Params(), b.Model.Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].W, pb[i].W); d != 0 {
			t.Fatalf("%s: weights diverge by %v after identical steps", pa[i].Name, d)
		}
	}
}

// TestWorkspaceStepAllocsReduced pins the acceptance criterion: after the
// one-step warmup, a workspace-backed training step must allocate at most
// 10% of what the allocating path does (≥ 90% reduction). Measured with a
// single worker so the numbers reflect buffer management, not the worker
// pool's per-spawn goroutine overhead (which both paths pay identically).
func TestWorkspaceStepAllocsReduced(t *testing.T) {
	old := parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)

	batches := copyTaskBatches(64, 2, 8, 2, 13)
	measure := func(noWS bool) float64 {
		e := newWorkspaceTestEngine(83, noWS)
		e.Step(batches[0]) // warmup: arena fills, optimizer state appears
		return testing.AllocsPerRun(5, func() { e.Step(batches[0]) })
	}
	with := measure(false)
	without := measure(true)
	if without == 0 {
		t.Fatalf("allocating path reported zero allocations (%v with workspace)", with)
	}
	t.Logf("allocs/step: workspace %.0f, allocating %.0f (%.1f%% reduction)",
		with, without, 100*(1-with/without))
	if with > 0.10*without {
		t.Fatalf("workspace step allocates %.0f/op vs %.0f/op allocating — less than 90%% reduction", with, without)
	}
}

// TestConcurrentReplicasRaceFree runs two replicas of the same model config
// through concurrent forward/backward steps, each with its own workspace —
// the regression test for the probsDense/probsSparse layer-struct sharing
// hazard. Run under -race (the CI race job covers this package).
func TestConcurrentReplicasRaceFree(t *testing.T) {
	r := tensor.NewRNG(84)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())

	engines := []*Engine{
		{Model: m, Opt: peft.NewAdamW(1e-3, 0)},
		{Model: CloneModel(m, r.Split()), Opt: peft.NewAdamW(1e-3, 0)},
	}
	batches := copyTaskBatches(64, 2, 8, 4, 7)

	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for _, b := range batches {
				e.Step(b)
			}
		}(e)
	}
	wg.Wait()

	// Identical weights, batches, and optimizer ⇒ the replicas must still
	// agree exactly; any cross-replica state sharing would show up here
	// (and as a -race report above).
	pa, pb := engines[0].Model.Params(), engines[1].Model.Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].W, pb[i].W); d != 0 {
			t.Fatalf("%s: concurrent replicas diverged by %v", pa[i].Name, d)
		}
	}
}

// TestDataParallelWorkspacesStayIdentical pins the per-replica arenas in
// DataParallel: concurrent sharded steps with private workspaces keep
// replicas bit-identical (MaxReplicaDrift == 0), as synchronous DDP must.
func TestDataParallelWorkspacesStayIdentical(t *testing.T) {
	r := tensor.NewRNG(85)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())
	dp := NewDataParallel(m, 2, func() peft.Optimizer { return peft.NewAdamW(1e-3, 0) }, r)

	batches := copyTaskBatches(64, 4, 8, 3, 11)
	for _, b := range batches {
		dp.Step(b)
	}
	if drift := dp.MaxReplicaDrift(); drift != 0 {
		t.Fatalf("replica drift %v after data-parallel steps", drift)
	}
}
