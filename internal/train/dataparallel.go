package train

import (
	"fmt"
	"sync"
	"time"

	"longexposure/internal/data"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

// CloneModel deep-copies a transformer's weights into a structurally
// identical fresh model (same PEFT modules must be re-applied by the
// caller before cloning trainable state is meaningful; in practice clones
// are made after peft.Apply, which this helper supports by copying every
// parameter by position).
func CloneModel(src *nn.Transformer, rng *tensor.RNG) *nn.Transformer {
	dst := nn.NewTransformer(src.Cfg, rng)
	// Recreate structural extensions.
	for i, b := range src.Blocks {
		if b.Attn.Wq.HasLoRA() {
			dst.Blocks[i].Attn.Wq.AddLoRA(fmt.Sprintf("layer%d.attn.q_proj", i), b.Attn.Wq.LoRAA.W.Dim(1), 1, rng)
			dst.Blocks[i].Attn.Wq.LoRAScale = b.Attn.Wq.LoRAScale
		}
		if b.Attn.Wv.HasLoRA() {
			dst.Blocks[i].Attn.Wv.AddLoRA(fmt.Sprintf("layer%d.attn.v_proj", i), b.Attn.Wv.LoRAA.W.Dim(1), 1, rng)
			dst.Blocks[i].Attn.Wv.LoRAScale = b.Attn.Wv.LoRAScale
		}
		if b.AdptA != nil {
			dst.Blocks[i].AdptA = nn.NewAdapter(fmt.Sprintf("layer%d.adapter_attn", i), src.Cfg.Dim, b.AdptA.Bottleneck, rng)
		}
		if b.AdptM != nil {
			dst.Blocks[i].AdptM = nn.NewAdapter(fmt.Sprintf("layer%d.adapter_mlp", i), src.Cfg.Dim, b.AdptM.Bottleneck, rng)
		}
	}
	if src.Prompt != nil {
		dst.EnablePrompt(src.PromptLen, rng)
	}

	sp := src.Params()
	dp := dst.Params()
	if len(sp) != len(dp) {
		panic(fmt.Sprintf("train: clone parameter count mismatch %d vs %d", len(sp), len(dp)))
	}
	for i := range sp {
		dp[i].W.CopyFrom(sp[i].W)
		dp[i].Frozen = sp[i].Frozen
	}
	return dst
}

// DataParallel simulates synchronous data-parallel fine-tuning across
// nWorkers replicas ("GPUs"): each worker computes gradients on its shard
// of the batch, gradients of trainable parameters are all-reduced
// (averaged), and each replica steps its own optimizer identically —
// keeping replicas bit-identical, as NCCL-based DDP does.
type DataParallel struct {
	Workers  []*nn.Transformer
	Opts     []peft.Optimizer
	ClipNorm float64

	// arenas holds one private workspace per replica: concurrent workers
	// never share step-lived buffers or saved-for-backward state, keeping
	// the forward/backward phase race-free under the race detector.
	arenas    []*tensor.Arena
	paramSets []nn.ParamSet // cached per-replica parameter sets
	losses    []float64
}

// NewDataParallel replicates the (already PEFT-configured) model.
func NewDataParallel(m *nn.Transformer, nWorkers int, mkOpt func() peft.Optimizer, rng *tensor.RNG) *DataParallel {
	dp := &DataParallel{}
	dp.Workers = append(dp.Workers, m)
	dp.Opts = append(dp.Opts, mkOpt())
	for w := 1; w < nWorkers; w++ {
		dp.Workers = append(dp.Workers, CloneModel(m, rng.Split()))
		dp.Opts = append(dp.Opts, mkOpt())
	}
	for range dp.Workers {
		dp.arenas = append(dp.arenas, tensor.NewArena())
	}
	dp.losses = make([]float64, len(dp.Workers))
	for _, w := range dp.Workers {
		dp.paramSets = append(dp.paramSets, w.Params())
	}
	return dp
}

// Step shards the batch across workers, runs forward/backward
// concurrently, all-reduces trainable gradients, and steps every replica.
// It returns the mean loss and the wall-clock of the slowest worker plus
// the reduce/step time (the data-parallel critical path).
func (dp *DataParallel) Step(b data.Batch) (float64, time.Duration) {
	n := len(dp.Workers)
	if len(b.Inputs)%n != 0 {
		panic(fmt.Sprintf("train: batch %d not divisible by %d workers", len(b.Inputs), n))
	}
	shard := len(b.Inputs) / n

	losses := dp.losses
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := dp.Workers[w]
			ws := dp.arenas[w] // private per-replica workspace
			ins := b.Inputs[w*shard : (w+1)*shard]
			tgts := b.Targets[w*shard : (w+1)*shard]
			logits := m.Forward(ins, nil, ws)
			loss, dLogits := nn.CrossEntropyIn(ws, logits, m.FlattenTargetsIn(ws, tgts))
			dp.paramSets[w].ZeroGrads()
			m.Backward(dLogits, ws)
			ws.Release() // gradients live on the parameters; scratch is done
			losses[w] = loss
		}(w)
	}
	wg.Wait()

	// All-reduce (average) trainable gradients across replicas.
	paramSets := dp.paramSets
	base := paramSets[0]
	inv := float32(1 / float64(n))
	for pi, p := range base {
		if p.Frozen {
			continue
		}
		acc := p.Grad.Data
		for w := 1; w < n; w++ {
			other := paramSets[w][pi].Grad.Data
			for i := range acc {
				acc[i] += other[i]
			}
		}
		for i := range acc {
			acc[i] *= inv
		}
		for w := 1; w < n; w++ {
			copy(paramSets[w][pi].Grad.Data, acc)
		}
	}

	for w := range dp.Workers {
		if dp.ClipNorm > 0 {
			peft.ClipGradNorm(paramSets[w], dp.ClipNorm)
		}
		dp.Opts[w].Step(paramSets[w])
	}
	elapsed := time.Since(start)

	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(n), elapsed
}

// MaxReplicaDrift returns the largest trainable-parameter divergence across
// replicas — zero in a correct synchronous implementation.
func (dp *DataParallel) MaxReplicaDrift() float64 {
	base := dp.Workers[0].Params()
	var worst float64
	for w := 1; w < len(dp.Workers); w++ {
		other := dp.Workers[w].Params()
		for pi, p := range base {
			if p.Frozen {
				continue
			}
			if d := tensor.MaxAbsDiff(p.W, other[pi].W); d > worst {
				worst = d
			}
		}
	}
	return worst
}
