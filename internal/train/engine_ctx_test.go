package train

import (
	"context"
	"errors"
	"testing"

	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

func TestRunContextHookSeesEveryStep(t *testing.T) {
	r := tensor.NewRNG(5)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r)
	e := &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0)}

	batches := copyTaskBatches(64, 2, 8, 6, 7)
	const epochs = 2
	var infos []StepInfo
	res, err := e.RunContext(context.Background(), batches, epochs, func(si StepInfo) {
		infos = append(infos, si)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := epochs * len(batches)
	if res.Steps != want || len(infos) != want {
		t.Fatalf("steps %d, hooks %d, want %d", res.Steps, len(infos), want)
	}
	for i, si := range infos {
		if si.GlobalStep != i {
			t.Fatalf("hook %d reported global step %d", i, si.GlobalStep)
		}
		if si.TotalSteps != want {
			t.Fatalf("hook %d reported total %d, want %d", i, si.TotalSteps, want)
		}
		if si.Loss != res.Losses[i] {
			t.Fatalf("hook %d loss %v != result loss %v", i, si.Loss, res.Losses[i])
		}
		if si.Times.Total() <= 0 {
			t.Fatalf("hook %d has zero phase times", i)
		}
		if si.Epoch != i/len(batches) || si.Step != i%len(batches) {
			t.Fatalf("hook %d epoch/step = %d/%d", i, si.Epoch, si.Step)
		}
	}
}

func TestRunContextCancellationReturnsPartialResult(t *testing.T) {
	r := tensor.NewRNG(6)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r)
	e := &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0)}

	batches := copyTaskBatches(64, 2, 8, 4, 8)
	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 3
	res, err := e.RunContext(ctx, batches, 100, func(si StepInfo) {
		if si.GlobalStep == stopAfter-1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Steps != stopAfter {
		t.Fatalf("ran %d steps after cancel at %d", res.Steps, stopAfter)
	}
	if len(res.Losses) != stopAfter {
		t.Fatalf("partial result has %d losses", len(res.Losses))
	}
}

func TestRunMatchesRunContext(t *testing.T) {
	build := func() *Engine {
		r := tensor.NewRNG(9)
		m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
		peft.Apply(m, peft.FullFT, peft.Options{}, r)
		return &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0)}
	}
	batches := copyTaskBatches(64, 2, 8, 4, 11)
	a := build().Run(batches, 2)
	b, err := build().RunContext(context.Background(), batches, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Losses) != len(b.Losses) {
		t.Fatalf("loss counts differ: %d vs %d", len(a.Losses), len(b.Losses))
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("step %d: Run loss %v, RunContext loss %v", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestEvaluateTaskSkipsOutOfRangeAnswerPositions is the regression test for
// the bounds check: the logit row is PromptLen+AnswerPos, so the guard must
// be on that row, and LM examples (AnswerPos -1) must be skipped rather
// than indexing a negative row (a panic on prompt-free models, a silent
// prompt-row read on prompted ones).
func TestEvaluateTaskSkipsOutOfRangeAnswerPositions(t *testing.T) {
	const seqLen = 8
	mk := func(method peft.Method) *nn.Transformer {
		r := tensor.NewRNG(12)
		m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
		peft.Apply(m, method, peft.Options{PromptTokens: 4}, r)
		return m
	}
	valid := data.Example{
		Input:     []int{data.TokBOS, data.TokBase, data.TokBase + 1, data.TokSep},
		Target:    []int{nn.IgnoreIndex, nn.IgnoreIndex, nn.IgnoreIndex, data.TokYes},
		Label:     0,
		Choices:   []int{data.TokYes, data.TokNo},
		AnswerPos: 3,
	}
	late := valid
	late.AnswerPos = seqLen // past the padded sequence
	lm := valid
	lm.AnswerPos = -1 // pure LM example mixed into an eval set
	lm.Choices = nil
	lm.Label = -1
	broken := valid // malformed: keeps choices but has no answer position
	broken.AnswerPos = -1

	for _, method := range []peft.Method{peft.LoRA, peft.PTuning} {
		m := mk(method)
		// Every example is skippable: the old guard panicked here on the
		// prompt-free model (negative logit row for broken), read a prompt
		// row on the prompted one, and scored lm as trivially "correct"
		// (argmax over zero choices is -1 == Label). All must be skipped.
		if acc := EvaluateTask(m, []data.Example{late, lm, broken}, seqLen, nil); acc != 0 {
			t.Errorf("method %v: accuracy %v over skip-only examples, want 0", method, acc)
		}
		// A valid example still counts.
		if acc := EvaluateTask(m, []data.Example{valid, late, lm}, seqLen, nil); acc != 0 && acc != 1 {
			t.Errorf("method %v: accuracy %v counts skipped examples", method, acc)
		}
	}
}
