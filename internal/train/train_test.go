package train

import (
	"math"
	"testing"

	"longexposure/internal/data"
	"longexposure/internal/exposer"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
)

func copyTaskBatches(vocab, batchSize, seqLen, n int, seed uint64) []data.Batch {
	rng := tensor.NewRNG(seed)
	var examples []data.Example
	for i := 0; i < n; i++ {
		in := make([]int, seqLen)
		tg := make([]int, seqLen)
		for j := range in {
			in[j] = data.TokBase + rng.Intn(vocab-data.TokBase)
			tg[j] = in[j] // predict the input token itself
		}
		examples = append(examples, data.Example{Input: in, Target: tg, Label: -1, AnswerPos: -1})
	}
	return data.Batches(examples, batchSize, seqLen)
}

func TestEngineStepPhases(t *testing.T) {
	r := tensor.NewRNG(1)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r)
	e := &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0)}

	batches := copyTaskBatches(64, 2, 8, 2, 2)
	loss, times := e.Step(batches[0])
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss = %v", loss)
	}
	if times.Forward <= 0 || times.Backward <= 0 || times.Optim <= 0 {
		t.Fatalf("phase times not recorded: %+v", times)
	}
	if times.Predict != 0 {
		t.Fatalf("dense engine recorded predict time: %v", times.Predict)
	}
	if times.Total() != times.Forward+times.Backward+times.Optim {
		t.Fatal("Total inconsistent")
	}
}

func TestEngineRunLearns(t *testing.T) {
	r := tensor.NewRNG(3)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.FullFT, peft.Options{}, r)
	e := &Engine{Model: m, Opt: peft.NewAdamW(3e-3, 0), ClipNorm: 1}

	batches := copyTaskBatches(64, 4, 8, 16, 4)
	res := e.Run(batches, 8)
	if res.Steps != 8*len(batches) {
		t.Fatalf("steps = %d", res.Steps)
	}
	first := res.Losses[0]
	last := res.FinalLoss()
	if last > first*0.6 {
		t.Fatalf("loss did not drop: %v → %v", first, last)
	}
}

func TestEngineWithLongExposurePlanner(t *testing.T) {
	r := tensor.NewRNG(5)
	spec := model.SimSmall(nn.ActReLU)
	m := nn.NewTransformer(spec.Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r)

	// Offline: collect inference data, train predictors.
	exp := exposer.New(exposer.Config{Blk: 4})
	batches := copyTaskBatches(64, 2, 8, 8, 6)
	var collectIDs [][][]int
	for _, b := range batches[:2] {
		collectIDs = append(collectIDs, b.Inputs)
	}
	samples := predictor.Collect(m, collectIDs)
	set := predictor.NewSet(spec.Config, exp, 4, r)
	set.Train(samples, spec.Config.Heads, predictor.TrainConfig{Epochs: 8})

	rp := set.Planner()
	e := &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0), Planner: rp, RP: rp}
	loss, times := e.Step(batches[0])
	if math.IsNaN(loss) {
		t.Fatal("sparse step produced NaN loss")
	}
	if times.Predict <= 0 {
		t.Fatal("predict phase not recorded")
	}
}

// TestSparseTrainingTracksDense is the Figure 11 claim in miniature:
// fine-tuning under predicted sparsity must converge to a loss close to the
// dense run's, while random sparse patterns must not.
func TestSparseTrainingTracksDense(t *testing.T) {
	spec := model.SimSmall(nn.ActReLU)
	batches := copyTaskBatches(64, 2, 8, 12, 7)

	runArm := func(mk func(m *nn.Transformer, r *tensor.RNG) nn.Planner) float64 {
		r := tensor.NewRNG(42) // identical init across arms
		m := nn.NewTransformer(spec.Config, r)
		peft.Apply(m, peft.LoRA, peft.Options{}, tensor.NewRNG(43))
		var planner nn.Planner
		if mk != nil {
			planner = mk(m, tensor.NewRNG(44))
		}
		e := &Engine{Model: m, Opt: peft.NewAdamW(2e-3, 0), Planner: planner}
		return e.Run(batches, 6).FinalLoss()
	}

	dense := runArm(nil)
	le := runArm(func(m *nn.Transformer, r *tensor.RNG) nn.Planner {
		exp := exposer.New(exposer.Config{Blk: 4})
		samples := predictor.Collect(m, [][][]int{batches[0].Inputs, batches[1].Inputs})
		set := predictor.NewSet(spec.Config, exp, 4, r)
		set.Train(samples, spec.Config.Heads, predictor.TrainConfig{Epochs: 8})
		return set.Planner()
	})

	if le > dense*1.35+0.1 {
		t.Fatalf("Long Exposure loss %v strays from dense %v", le, dense)
	}
}

func TestEvaluateTaskAboveChanceAfterTraining(t *testing.T) {
	r := tensor.NewRNG(8)
	spec := model.SimSmall(nn.ActReLU)
	m := nn.NewTransformer(spec.Config, r)
	peft.Apply(m, peft.FullFT, peft.Options{}, r)

	task, _ := data.TaskByName("Winogrande")
	trainEx := task.Generate(256, spec.Config.Vocab, 100)
	testEx := task.Generate(64, spec.Config.Vocab, 200)
	seqLen := 8
	batches := data.Batches(trainEx, 8, seqLen)

	before := EvaluateTask(m, testEx, seqLen, nil)
	e := &Engine{Model: m, Opt: peft.NewAdamW(5e-3, 0), ClipNorm: 1}
	e.Run(batches, 15)
	after := EvaluateTask(m, testEx, seqLen, nil)

	if after < 0.75 {
		t.Fatalf("accuracy after training = %.3f (before %.3f)", after, before)
	}
}

func TestStderrOfAccuracy(t *testing.T) {
	if s := StderrOfAccuracy(0.5, 100); math.Abs(s-0.05) > 1e-9 {
		t.Fatalf("stderr = %v", s)
	}
	if StderrOfAccuracy(0.5, 0) != 0 {
		t.Fatal("n=0 should give 0")
	}
}

func TestCloneModelPreservesFunction(t *testing.T) {
	r := tensor.NewRNG(9)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r)
	clone := CloneModel(m, tensor.NewRNG(10))

	ids := [][]int{{1, 2, 3, 4}}
	a := m.Forward(ids, nil, nil)
	b := clone.Forward(ids, nil, nil)
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("clone diverges: %v", d)
	}
	// Freeze flags preserved.
	mp, cp := m.Params(), clone.Params()
	for i := range mp {
		if mp[i].Frozen != cp[i].Frozen {
			t.Fatalf("freeze flag mismatch at %s", mp[i].Name)
		}
	}
}

func TestDataParallelReplicasStaySynchronized(t *testing.T) {
	r := tensor.NewRNG(11)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{}, r)
	dp := NewDataParallel(m, 2, func() peft.Optimizer { return peft.NewAdamW(1e-3, 0) }, r)

	batches := copyTaskBatches(64, 4, 8, 8, 12)
	for _, b := range batches {
		loss, elapsed := dp.Step(b)
		if math.IsNaN(loss) || elapsed <= 0 {
			t.Fatalf("bad step: loss %v elapsed %v", loss, elapsed)
		}
	}
	if drift := dp.MaxReplicaDrift(); drift != 0 {
		t.Fatalf("replicas drifted by %v", drift)
	}
}

func TestDataParallelMatchesSingleWorkerLoss(t *testing.T) {
	mkModel := func() *nn.Transformer {
		r := tensor.NewRNG(13)
		m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
		peft.Apply(m, peft.LoRA, peft.Options{}, tensor.NewRNG(14))
		return m
	}
	batches := copyTaskBatches(64, 4, 8, 8, 15)

	// Single engine.
	e := &Engine{Model: mkModel(), Opt: peft.NewAdamW(1e-3, 0)}
	var singleLoss float64
	for _, b := range batches {
		l, _ := e.Step(b)
		singleLoss = l
	}

	// Two workers. Gradient averaging over shards is not bit-identical to
	// the single-worker full-batch gradient (loss normalization differs per
	// shard), but losses must track closely.
	dp := NewDataParallel(mkModel(), 2, func() peft.Optimizer { return peft.NewAdamW(1e-3, 0) }, tensor.NewRNG(15))
	var dpLoss float64
	for _, b := range batches {
		dpLoss, _ = dp.Step(b)
	}
	if math.Abs(singleLoss-dpLoss) > 0.25*singleLoss {
		t.Fatalf("single %.4f vs data-parallel %.4f", singleLoss, dpLoss)
	}
}

func TestDataParallelBadShardPanics(t *testing.T) {
	r := tensor.NewRNG(16)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	dp := NewDataParallel(m, 2, func() peft.Optimizer { return peft.NewSGD(0.1, 0) }, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd batch across 2 workers")
		}
	}()
	dp.Step(copyTaskBatches(64, 3, 8, 3, 17)[0])
}
