package train

import (
	"bytes"
	"math"
	"testing"

	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

// TestEngineFullyDeterministic: identical seeds must reproduce the exact
// loss sequence — the reproducibility guarantee every experiment rests on.
func TestEngineFullyDeterministic(t *testing.T) {
	run := func() []float64 {
		r := tensor.NewRNG(77)
		m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
		peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())
		e := &Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0)}
		batches := copyTaskBatches(64, 2, 8, 6, 9)
		return e.Run(batches, 2).Losses
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestCheckpointResumeMidTraining: saving and restoring weights must let a
// second engine continue with the identical loss trajectory.
func TestCheckpointResumeMidTraining(t *testing.T) {
	mk := func() *nn.Transformer {
		r := tensor.NewRNG(78)
		m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
		peft.Apply(m, peft.FullFT, peft.Options{}, r.Split())
		return m
	}
	batches := copyTaskBatches(64, 2, 8, 8, 10)

	// Reference: run 4 steps straight with SGD (stateless optimizer, so a
	// weight checkpoint fully captures training state).
	ref := &Engine{Model: mk(), Opt: peft.NewSGD(0.1, 0)}
	var refLosses []float64
	for _, b := range batches[:4] {
		l, _ := ref.Step(b)
		refLosses = append(refLosses, l)
	}

	// Same first 2 steps, checkpoint, restore into a fresh model, resume.
	first := &Engine{Model: mk(), Opt: peft.NewSGD(0.1, 0)}
	for _, b := range batches[:2] {
		first.Step(b)
	}
	var buf bytes.Buffer
	if err := first.Model.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed := &Engine{Model: mk(), Opt: peft.NewSGD(0.1, 0)}
	if err := resumed.Model.Params().Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, b := range batches[2:4] {
		l, _ := resumed.Step(b)
		if math.Abs(l-refLosses[2+i]) > 1e-6 {
			t.Fatalf("resumed step %d: loss %v vs reference %v", i, l, refLosses[2+i])
		}
	}
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	logits := tensor.New(3, 5)
	targets := []int{nn.IgnoreIndex, nn.IgnoreIndex, nn.IgnoreIndex}
	loss, grad := nn.CrossEntropy(logits, targets)
	if loss != 0 {
		t.Fatalf("loss = %v for fully-ignored batch", loss)
	}
	if tensor.L2Norm(grad) != 0 {
		t.Fatal("gradient nonzero for fully-ignored batch")
	}
}

func TestEvaluateTaskSkipsOverlongExamples(t *testing.T) {
	r := tensor.NewRNG(79)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	// Example whose answer position falls outside the evaluation window.
	long := data.Example{
		Input:     make([]int, 30),
		Target:    make([]int, 30),
		Label:     0,
		Choices:   []int{4, 5},
		AnswerPos: 29,
	}
	for i := range long.Target {
		long.Target[i] = nn.IgnoreIndex
	}
	acc := EvaluateTask(m, []data.Example{long}, 8, nil)
	if acc != 0 {
		t.Fatalf("overlong example scored %v", acc)
	}
}

func TestPhaseTimesArithmetic(t *testing.T) {
	a := PhaseTimes{Forward: 10, Backward: 20, Optim: 5, Predict: 1}
	b := a.Add(a)
	if b.Forward != 20 || b.Total() != 72 {
		t.Fatalf("Add wrong: %+v", b)
	}
	c := b.Scale(2)
	if c.Forward != 10 || c.Predict != 1 {
		t.Fatalf("Scale wrong: %+v", c)
	}
	if a.Scale(0).Forward != 10 {
		t.Fatal("Scale(0) should be identity")
	}
}
