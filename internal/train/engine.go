// Package train implements the fine-tuning engine: forward / backward /
// optimizer-step phases with separate wall-clock accounting (the
// measurement behind Table I and Figure 10), dense and Long-Exposure
// execution paths, task evaluation, and a data-parallel multi-worker mode.
package train

import (
	"context"
	"math"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/data"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
	"longexposure/internal/trace"
)

// PhaseTimes records one step's wall-clock per fine-tuning phase. Predict is
// the predictor overhead, separated out of Forward (Figure 10's fourth bar).
type PhaseTimes struct {
	Forward, Backward, Optim, Predict time.Duration
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Forward + p.Backward + p.Optim + p.Predict
}

// Add accumulates another step's times.
func (p PhaseTimes) Add(q PhaseTimes) PhaseTimes {
	return PhaseTimes{
		Forward:  p.Forward + q.Forward,
		Backward: p.Backward + q.Backward,
		Optim:    p.Optim + q.Optim,
		Predict:  p.Predict + q.Predict,
	}
}

// Scale divides all phases by n (for averaging).
func (p PhaseTimes) Scale(n int) PhaseTimes {
	if n == 0 {
		return p
	}
	return PhaseTimes{
		Forward:  p.Forward / time.Duration(n),
		Backward: p.Backward / time.Duration(n),
		Optim:    p.Optim / time.Duration(n),
		Predict:  p.Predict / time.Duration(n),
	}
}

// Engine drives fine-tuning of one model replica.
//
// Memory model: the engine owns one workspace arena per replica. Every
// step Gets its step-lived buffers (activations, gradients-in-flight,
// saved-for-backward state) from that arena and Releases them after the
// optimizer update, so steady-state training performs near-zero heap
// allocation. Set NoWorkspace to fall back to the allocating path — the
// two paths are bit-identical, which the determinism tests pin.
type Engine struct {
	Model *nn.Transformer
	Opt   peft.Optimizer
	// Planner selects sparse execution; nil runs the dense baseline.
	Planner nn.Planner
	// RP, when set, is the runtime predictor whose elapsed time is
	// reported as the Predict phase (it must be the same object Planner
	// routes through).
	RP *predictor.RuntimePlanner
	// ClipNorm, when positive, applies global gradient-norm clipping.
	ClipNorm float64
	// NoWorkspace disables the step arena: every step allocates fresh
	// buffers exactly like the seed code. Results are bit-identical; only
	// allocation behavior differs.
	NoWorkspace bool
	// Metrics, when set, receives per-step observability: step and phase
	// latency, tokens, loss, and workspace-arena traffic. Updates are
	// atomic handle writes — the instrumented step stays at zero
	// steady-state allocations (pinned by the bench obs suite).
	Metrics *obs.TrainMetrics
	// Span, when set, parents a "train.step" span per Step with
	// forward/predict/backward/optim phase children. nil (or an unsampled
	// run) costs one branch — the traced-but-unsampled step stays
	// zero-alloc (pinned by the bench trace suite).
	Span *trace.Span
	// Acct, when set, accumulates the run's wide-event resource vector
	// (steps, tokens, analytic FLOPs, wall-clock) for the accounting
	// plane. The owner stamps identity fields and emits at completion;
	// per-step recording is plain field arithmetic — zero allocations.
	Acct *account.TrainAccumulator

	ws *tensor.Arena
	// stepSeq counts Steps for the span's step attribute.
	stepSeq int64
	// lastArenaGets/lastArenaMisses remember the arena's cumulative
	// counters at the previous instrumented step, so Metrics receives
	// per-step deltas.
	lastArenaGets, lastArenaMisses int64
	// params caches Model.Params() — rebuilding the set every step
	// allocates. The cache is invalidated when Model is swapped; changing
	// the parameter *structure* of the current model (e.g. injecting LoRA
	// after the first Step) is not supported mid-training.
	params      nn.ParamSet
	paramsModel *nn.Transformer
}

// Workspace returns the engine's step arena, creating it on first use
// (nil when NoWorkspace is set).
func (e *Engine) Workspace() *tensor.Arena {
	if e.NoWorkspace {
		return nil
	}
	if e.ws == nil {
		e.ws = tensor.NewArena()
	}
	return e.ws
}

// Step runs one fine-tuning step on a batch and returns the loss and the
// per-phase times.
func (e *Engine) Step(b data.Batch) (float64, PhaseTimes) {
	var times PhaseTimes
	ws := e.Workspace()

	t0 := time.Now()
	logits := e.Model.Forward(b.Inputs, e.Planner, ws)
	flat := e.Model.FlattenTargetsIn(ws, b.Targets)
	loss, dLogits := nn.CrossEntropyIn(ws, logits, flat)
	times.Forward = time.Since(t0)
	if e.RP != nil {
		times.Predict = e.RP.TakeElapsed()
		times.Forward -= times.Predict
	}

	t1 := time.Now()
	if e.params == nil || e.paramsModel != e.Model {
		e.params = e.Model.Params()
		e.paramsModel = e.Model
	}
	params := e.params
	params.ZeroGrads()
	e.Model.Backward(dLogits, ws)
	times.Backward = time.Since(t1)

	t2 := time.Now()
	if e.ClipNorm > 0 {
		peft.ClipGradNorm(params, e.ClipNorm)
	}
	e.Opt.Step(params)
	times.Optim = time.Since(t2)

	// The step is fully applied; recycle every step-lived buffer.
	ws.Release()

	if parent := e.Span; parent != nil {
		sp := parent.StartChildAt("train.step", t0)
		sp.SetInt("step", e.stepSeq)
		sp.SetFloat("loss", loss)
		sp.ChildAt("train.forward", t0, t0.Add(times.Forward))
		if e.RP != nil {
			sp.ChildAt("train.predict", t0.Add(times.Forward), t1)
		}
		sp.ChildAt("train.backward", t1, t1.Add(times.Backward))
		sp.ChildAt("train.optim", t2, t2.Add(times.Optim))
		sp.Finish()
	}
	e.stepSeq++

	if a := e.Acct; a != nil {
		tokens, seqLen := 0, 0
		for _, row := range b.Inputs {
			tokens += len(row)
			if len(row) > seqLen {
				seqLen = len(row)
			}
		}
		a.AddStep(tokens, e.Model.TrainStepFLOPs(len(b.Inputs), seqLen), times.Total())
	}

	if m := e.Metrics; m != nil {
		tokens := 0
		for _, row := range b.Inputs {
			tokens += len(row)
		}
		m.Steps.Inc()
		m.Tokens.Add(float64(tokens))
		m.StepSeconds.Observe(times.Total().Seconds())
		m.Loss.Set(loss)
		m.PhaseForward.Add(times.Forward.Seconds())
		m.PhaseBackward.Add(times.Backward.Seconds())
		m.PhaseOptim.Add(times.Optim.Seconds())
		m.PhasePredict.Add(times.Predict.Seconds())
		if ws != nil {
			gets, misses := ws.Gets(), ws.Misses()
			m.ArenaGets.Add(float64(gets - e.lastArenaGets))
			m.ArenaMisses.Add(float64(misses - e.lastArenaMisses))
			e.lastArenaGets, e.lastArenaMisses = gets, misses
		}
	}
	return loss, times
}

// StepInfo describes one completed fine-tuning step, delivered to a
// StepHook. GlobalStep counts steps across epochs (0-based); TotalSteps is
// the number of steps the whole run will execute.
type StepInfo struct {
	Epoch      int
	Step       int // index within the epoch
	GlobalStep int
	TotalSteps int
	Loss       float64
	Times      PhaseTimes
}

// StepHook observes training progress. Hooks run synchronously on the
// training goroutine after each step; keep them cheap (hand off to a
// channel for slow consumers).
type StepHook func(StepInfo)

// Result summarizes a training run.
type Result struct {
	Losses []float64 // per-step losses
	Times  PhaseTimes
	Steps  int
}

// MeanStepTime returns the average per-step phase times.
func (r Result) MeanStepTime() PhaseTimes { return r.Times.Scale(r.Steps) }

// FinalLoss returns the mean of the last few losses (smoothing).
func (r Result) FinalLoss() float64 {
	n := len(r.Losses)
	if n == 0 {
		return 0
	}
	k := min(5, n)
	var s float64
	for _, l := range r.Losses[n-k:] {
		s += l
	}
	return s / float64(k)
}

// Run fine-tunes over the batches for the given number of epochs.
func (e *Engine) Run(batches []data.Batch, epochs int) Result {
	res, _ := e.RunContext(context.Background(), batches, epochs, nil)
	return res
}

// RunContext fine-tunes over the batches for the given number of epochs,
// checking ctx between steps and invoking hook (if non-nil) after each
// step. On cancellation it returns the partial Result together with
// ctx.Err(); long-running jobs use this to stay cancellable and to report
// per-step progress.
func (e *Engine) RunContext(ctx context.Context, batches []data.Batch, epochs int, hook StepHook) (Result, error) {
	var res Result
	total := epochs * len(batches)
	for ep := 0; ep < epochs; ep++ {
		for bi, b := range batches {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			loss, times := e.Step(b)
			res.Losses = append(res.Losses, loss)
			res.Times = res.Times.Add(times)
			res.Steps++
			if hook != nil {
				hook(StepInfo{
					Epoch:      ep,
					Step:       bi,
					GlobalStep: res.Steps - 1,
					TotalSteps: total,
					Loss:       loss,
					Times:      times,
				})
			}
		}
	}
	return res, nil
}

// EvaluateTask measures restricted-choice accuracy on classification
// examples: the prediction is the argmax over the example's candidate
// answer tokens at its answer position.
func EvaluateTask(m *nn.Transformer, examples []data.Example, seqLen int, planner nn.Planner) float64 {
	correct, total := 0, 0
	ws := tensor.NewArena() // per-example workspace, recycled across examples
	for _, e := range examples {
		// The logit row is offset by the prompt length of prompted
		// (P-Tuning) models, so bound-check the row itself — and reject
		// AnswerPos < 0 (LM examples), which the old AnswerPos >= seqLen
		// guard let through: it indexed a negative row on prompt-free
		// models and silently scored argmax-over-nothing as "correct".
		// Checking before Forward also skips the wasted pass.
		pos := m.PromptLen + e.AnswerPos
		if e.AnswerPos < 0 || pos >= m.PromptLen+seqLen {
			continue
		}
		p := data.PadTo(e, seqLen)
		logits := m.Forward([][]int{p.Input}, planner, ws)
		best, bestV := -1, float32(tensor.NegInf)
		for ci, tok := range e.Choices {
			v := logits.At(pos, tok)
			if v > bestV {
				best, bestV = ci, v
			}
		}
		ws.Release()
		if best == e.Label {
			correct++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// StderrOfAccuracy returns the binomial standard error of an accuracy
// estimate over n examples — the ± columns of Table IV.
func StderrOfAccuracy(acc float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(acc * (1 - acc) / float64(n))
}
