package train

import (
	"math"
	"testing"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

// TestPerplexityCompressedTolerance is the end-to-end acceptance bound for
// serving a compressed frozen base: on the sim task, the perplexity of an
// int8 (or f16) base stays within a stated relative tolerance of the f32
// base it was quantized from. The forward path of a compressed model is
// pinned bit-identical to its cached decode path (nn's
// TestCompressForwardMatchesDecode), so this bound transfers verbatim to
// token-at-a-time decode. The tolerances here are the ones README's
// "Precision & weight formats" table documents.
func TestPerplexityCompressedTolerance(t *testing.T) {
	batches := copyTaskBatches(64, 2, 8, 8, 91)
	build := func() *nn.Transformer {
		return nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, tensor.NewRNG(90))
	}
	ref := Perplexity(build(), batches, nil)

	for _, tc := range []struct {
		precision string
		relTol    float64
	}{
		{nn.PrecisionF16, 0.001}, // ≤2⁻¹¹ per-weight error barely moves NLL
		{nn.PrecisionI8, 0.02},   // stated int8 serving bound: 2% relative
	} {
		m := build()
		if err := m.Compress(tc.precision); err != nil {
			t.Fatal(err)
		}
		got := Perplexity(m, batches, nil)
		if rel := math.Abs(got-ref) / ref; rel > tc.relTol {
			t.Fatalf("%s perplexity %v vs f32 %v: relative drift %v exceeds %v",
				tc.precision, got, ref, rel, tc.relTol)
		}
	}
}
