package core

import (
	"math"
	"testing"

	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
)

func simConfig() Config {
	return Config{
		Spec:   model.SimSmall(nn.ActReLU),
		Method: peft.LoRA,
		Blk:    4,
		Seed:   5,
	}
}

func calibBatches(n int) [][][]int {
	rng := tensor.NewRNG(9)
	var out [][][]int
	for i := 0; i < n; i++ {
		row := make([]int, 8)
		for j := range row {
			row[j] = data.TokBase + rng.Intn(40)
		}
		out = append(out, [][]int{row})
	}
	return out
}

func TestSystemLifecycle(t *testing.T) {
	sys := New(simConfig())
	stats := sys.PretrainPredictors(calibBatches(3), predictor.TrainConfig{Epochs: 6})
	if stats.AttnRecall < 0.7 || stats.MLPRecall < 0.7 {
		t.Fatalf("predictor recall too low: %+v", stats)
	}

	eng := sys.Engine()
	rng := tensor.NewRNG(11)
	var examples []data.Example
	for i := 0; i < 16; i++ {
		in := make([]int, 8)
		tg := make([]int, 8)
		for j := range in {
			in[j] = data.TokBase + rng.Intn(40)
			tg[j] = in[j]
		}
		examples = append(examples, data.Example{Input: in, Target: tg, Label: -1, AnswerPos: -1})
	}
	batches := data.Batches(examples, 2, 8)
	res := eng.Run(batches, 2)
	if math.IsNaN(res.FinalLoss()) || res.FinalLoss() <= 0 {
		t.Fatalf("bad final loss %v", res.FinalLoss())
	}
	if res.Times.Predict <= 0 {
		t.Fatal("prediction time not accounted")
	}
}

func TestBaselineSharesInitialWeights(t *testing.T) {
	cfg := simConfig()
	sys := New(cfg)
	base := NewBaseline(cfg)
	ids := [][]int{{1, 2, 3, 4}}
	a := sys.Model.Forward(ids, nil, nil)
	b := base.Model.Forward(ids, nil, nil)
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("baseline weights differ: %v", d)
	}
}

func TestDensitiesInUnitRange(t *testing.T) {
	sys := New(simConfig())
	sys.PretrainPredictors(calibBatches(2), predictor.TrainConfig{Epochs: 4})
	attn, mlp := sys.Densities(calibBatches(2))
	if attn <= 0 || attn > 1 {
		t.Fatalf("attention density %v", attn)
	}
	if mlp <= 0 || mlp > 1 {
		t.Fatalf("MLP density %v", mlp)
	}
	// Causal structure bounds attention density: a causal layout covers at
	// most (nb+1)/(2·nb) of the full grid — 0.75 on the seq-8/blk-4 grid
	// used here.
	if attn > 0.75 {
		t.Fatalf("attention density %v exceeds causal bound", attn)
	}
}

func TestAblationSwitches(t *testing.T) {
	cfg := simConfig()
	cfg.DisableAttnSparsity = true
	sys := New(cfg)
	if !sys.Planner.DisableAttn {
		t.Fatal("attention ablation not wired")
	}
	cfg2 := simConfig()
	cfg2.DisableMLPSparsity = true
	if !New(cfg2).Planner.DisableMLP {
		t.Fatal("MLP ablation not wired")
	}
}

func TestGeLUSystemHasNoMLPPredictors(t *testing.T) {
	cfg := simConfig()
	cfg.Spec = model.SimSmall(nn.ActGeLU)
	sys := New(cfg)
	for _, lp := range sys.Predictors.Layers {
		if lp.MLP != nil {
			t.Fatal("GeLU system built MLP predictors")
		}
	}
	_, mlp := sys.Densities(calibBatches(1))
	if mlp != 1 {
		t.Fatalf("GeLU MLP density = %v, want 1 (dense)", mlp)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Spec: model.SimSmall(nn.ActReLU)}.Normalized()
	if c.Blk != 16 || c.PredictorRank != 8 || c.LR != 1e-3 || c.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}
