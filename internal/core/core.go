// Package core assembles the Long Exposure system (paper §III): a
// fine-tuning session that wires the Shadowy-sparsity Exposer, the
// Sequence-oriented Predictors and the Dynamic-aware Operators into the
// training engine, next to a dense baseline representing the PEFT-library
// state of the art.
//
// Lifecycle: New → PretrainPredictors (offline, on calibration batches) →
// Engine().Run (fine-tune under predicted sparsity). MeasureDensities
// reports the sparsity the pipeline actually achieves, which parameterizes
// the paper-scale cost model (internal/gpusim).
package core

import (
	"longexposure/internal/exposer"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

// Config assembles a Long Exposure session.
type Config struct {
	Spec   model.Spec
	Method peft.Method
	PEFT   peft.Options

	// Blk is the sparsity block size (tokens for attention, neurons for
	// the MLP). Sim default 16.
	Blk int
	// PredictorRank is the low-rank width of the attention predictors.
	PredictorRank int
	// AttnThreshold / MLPThreshold tune the exposer (see exposer.Config).
	AttnThreshold float64
	MLPThreshold  float64

	// LR is the fine-tuning learning rate (AdamW).
	LR float64
	// WeightDecay for AdamW.
	WeightDecay float64
	// ClipNorm > 0 enables gradient clipping.
	ClipNorm float64

	// DisableAttnSparsity / DisableMLPSparsity are ablation switches.
	DisableAttnSparsity bool
	DisableMLPSparsity  bool

	// Prime applies model.PrimeSparsity after construction, giving the sim
	// backbone the activation statistics of a pre-trained LLM (sparse
	// heavy-tailed MLP activations, local peaked attention). The paper
	// fine-tunes pre-trained checkpoints; experiments set this.
	Prime bool

	// Base, when non-nil, is a pre-trained backbone to clone instead of
	// initializing fresh weights — the "load the checkpoint, then apply
	// PEFT" pipeline the paper follows. Prime is ignored when Base is set
	// (the backbone's statistics are whatever training gave it).
	Base *nn.Transformer

	Seed uint64
}

// Normalized returns the config with every defaulted field resolved to the
// value New/NewBaseline would use. Exported so callers that key caches or
// job hashes on a Config (internal/jobs) normalize exactly the way the
// constructors do: two specs that build identical systems hash identically.
func (c Config) Normalized() Config {
	if c.Blk == 0 {
		c.Blk = 16
	}
	if c.PredictorRank == 0 {
		c.PredictorRank = 8
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// System is a live Long Exposure fine-tuning session.
type System struct {
	Cfg        Config
	Model      *nn.Transformer
	Exposer    *exposer.Exposer
	Predictors *predictor.Set
	Planner    *predictor.RuntimePlanner
	Opt        peft.Optimizer
}

// New builds the model, applies the PEFT method, and constructs the
// exposer/predictor stack (untrained — call PretrainPredictors).
func New(cfg Config) *System {
	cfg = cfg.Normalized()
	rng := tensor.NewRNG(cfg.Seed)
	m := buildModel(cfg, rng)
	peft.Apply(m, cfg.Method, cfg.PEFT, rng.Split())

	exp := exposer.New(exposer.Config{
		Blk:           cfg.Blk,
		AttnThreshold: cfg.AttnThreshold,
		MLPThreshold:  cfg.MLPThreshold,
	})
	set := predictor.NewSet(cfg.Spec.Config, exp, cfg.PredictorRank, rng.Split())
	rp := set.Planner()
	rp.DisableAttn = cfg.DisableAttnSparsity
	rp.DisableMLP = cfg.DisableMLPSparsity

	return &System{
		Cfg:        cfg,
		Model:      m,
		Exposer:    exp,
		Predictors: set,
		Planner:    rp,
		Opt:        peft.NewAdamW(cfg.LR, cfg.WeightDecay),
	}
}

// NewBaseline builds the dense PEFT-library baseline: the same model
// construction and PEFT method, no sparsity stack. Sharing cfg.Seed with a
// Long Exposure session yields identical initial weights, so comparisons
// are apples to apples.
func NewBaseline(cfg Config) *train.Engine {
	cfg = cfg.Normalized()
	rng := tensor.NewRNG(cfg.Seed)
	m := buildModel(cfg, rng)
	peft.Apply(m, cfg.Method, cfg.PEFT, rng.Split())
	return &train.Engine{
		Model:    m,
		Opt:      peft.NewAdamW(cfg.LR, cfg.WeightDecay),
		ClipNorm: cfg.ClipNorm,
	}
}

// buildModel constructs (and optionally primes) the backbone; New and
// NewBaseline share it so equal seeds mean equal weights.
func buildModel(cfg Config, rng *tensor.RNG) *nn.Transformer {
	if cfg.Base != nil {
		return train.CloneModel(cfg.Base, rng)
	}
	m := nn.NewTransformer(cfg.Spec.Config, rng)
	if cfg.Prime {
		model.PrimeSparsity(m, rng.Split(), cfg.Blk)
	}
	return m
}

// PretrainPredictors runs the offline §V-B phase: collect dense inference
// activations on calibration batches, then fit every layer's predictors.
func (s *System) PretrainPredictors(calibration [][][]int, tc predictor.TrainConfig) predictor.TrainStats {
	samples := predictor.Collect(s.Model, calibration)
	return s.Predictors.Train(samples, s.Cfg.Spec.Config.Heads, tc)
}

// Engine returns the fine-tuning engine running under predicted sparsity.
func (s *System) Engine() *train.Engine {
	return &train.Engine{
		Model:    s.Model,
		Opt:      s.Opt,
		Planner:  s.Planner,
		RP:       s.Planner,
		ClipNorm: s.Cfg.ClipNorm,
	}
}

// Densities reports the sparsity the pipeline achieves on the given
// batches: mean attention block density (active blocks / full block grid,
// the gpusim convention) and mean MLP neuron-block density.
func (s *System) Densities(batches [][][]int) (attn, mlp float64) {
	samples := predictor.Collect(s.Model, batches)
	var attnSum, mlpSum float64
	var attnN, mlpN int
	for _, sm := range samples {
		for li, lp := range s.Predictors.Layers {
			layouts := lp.Attn.Predict(sm.Layers[li].AttnInput, sm.Batch, sm.Seq, s.Exposer)
			for _, l := range layouts {
				attnSum += l.Density()
				attnN++
			}
			if lp.MLP != nil {
				blocks := lp.MLP.Predict(sm.Layers[li].MLPInput)
				mlpSum += float64(len(blocks)) / float64(lp.MLP.NBlk)
				mlpN++
			}
		}
	}
	if attnN > 0 {
		attn = attnSum / float64(attnN)
	}
	if mlpN > 0 {
		mlp = mlpSum / float64(mlpN)
	} else {
		mlp = 1
	}
	return
}
