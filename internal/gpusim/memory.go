package gpusim

import "longexposure/internal/peft"

// MemBreakdown itemizes the GPU-resident memory of one fine-tuning step —
// the Figure 8 model.
type MemBreakdown struct {
	Params      int64 // fp16 backbone + injected parameters
	Grads       int64 // fp16 gradients of trainable parameters
	OptState    int64 // fp32 master copy + Adam moments of trainables
	Activations int64 // saved-for-backward tensors
	Workspace   int64 // allocator slack / temporary buffers
}

// Total sums the breakdown.
func (m MemBreakdown) Total() int64 {
	return m.Params + m.Grads + m.OptState + m.Activations + m.Workspace
}

// GiB renders a byte count in binary gigabytes.
func GiB(b int64) float64 { return float64(b) / (1 << 30) }

// Footprint models the resident memory of one step. offloadMLP enables the
// "Long Exposure (optimal)" mode: inactive MLP weight blocks live on the
// host and only predicted-active blocks are resident (§VII-B, Figure 8).
func Footprint(shape StepShape, offloadMLP bool) MemBreakdown {
	s := shape.withDefaults()
	cfg := s.Spec.Config
	d := int64(cfg.Dim)
	h := int64(cfg.Hidden)
	L := int64(cfg.Layers)
	v := int64(cfg.Vocab)
	seq := int64(s.Seq)
	if s.Method == peft.PTuning {
		seq += int64(s.PromptTokens)
	}
	b := int64(s.Batch)
	t := b * seq
	heads := int64(cfg.Heads)

	var m MemBreakdown

	// Parameters (fp16). MLP weights may be partially offloaded.
	total := s.Spec.ParamCount()
	mlpW := L * 2 * d * h
	m.Params = 2 * total
	if offloadMLP && s.UseLongExposure && s.MLPDensity < 1 {
		resident := int64(float64(mlpW) * s.MLPDensity)
		m.Params -= 2 * (mlpW - resident)
	}

	// Trainable-side state.
	trainable := TrainableParams(s)
	m.Grads = 2 * trainable
	m.OptState = 12 * trainable // fp32 master + m + v

	// Activations saved for backward, per layer:
	//   ln outs, q/k/v, context, residuals ≈ 8 token-major tensors,
	//   attention probabilities (the O(s²) term the sparse masks shrink),
	//   MLP hidden (density-scaled).
	probsFrac := 1.0
	if s.UseLongExposure {
		probsFrac = s.AttnDensity
	}
	perLayer := 8*t*d*4 +
		int64(float64(b*heads*seq*seq*4)*probsFrac) +
		int64(float64(t*h*4)*s.MLPDensity)
	m.Activations = L*perLayer + t*v*4 // plus logits

	m.Workspace = (m.Params + m.Activations) / 20
	return m
}

// FitsOn reports whether the footprint fits the device (the OOM cells of
// Figures 7 and 8).
func FitsOn(d Device, m MemBreakdown) bool { return m.Total() <= d.MemBytes }
