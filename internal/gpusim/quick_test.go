package gpusim

import (
	"testing"
	"testing/quick"

	"longexposure/internal/model"
	"longexposure/internal/peft"
)

// Property: kernel time is monotone in FLOPs and in bytes, for every kind
// and both devices.
func TestQuickTimeMonotone(t *testing.T) {
	kinds := []KernelKind{KDenseGEMM, KBlockSparse, KNeuronSparse, KUnstructured, KElementwise, KPredictor}
	devices := []Device{A100(), A6000()}
	f := func(fl uint32, by uint32) bool {
		flops := float64(fl%1000000) * 1e6
		bytes := float64(by%1000000) * 1e3
		for _, kind := range kinds {
			for _, d := range devices {
				base := Kernel{Kind: kind, FLOPs: flops, Bytes: bytes}
				moreF := base
				moreF.FLOPs *= 2
				moreB := base
				moreB.Bytes *= 2
				if d.Time(moreF) < d.Time(base) || d.Time(moreB) < d.Time(base) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory footprint is monotone in sequence length and batch size.
func TestQuickFootprintMonotone(t *testing.T) {
	spec := model.OPT350M()
	f := func(sRaw, bRaw uint8) bool {
		seq := 128 + int(sRaw)%1024
		batch := 1 + int(bRaw)%8
		base := Footprint(StepShape{Spec: spec, Batch: batch, Seq: seq, Method: peft.LoRA}, false)
		longer := Footprint(StepShape{Spec: spec, Batch: batch, Seq: seq * 2, Method: peft.LoRA}, false)
		wider := Footprint(StepShape{Spec: spec, Batch: batch * 2, Seq: seq, Method: peft.LoRA}, false)
		return longer.Total() > base.Total() && wider.Total() > base.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Long Exposure's step never costs more than dense at equal
// shape when densities are below 1 (the operators are strictly
// work-proportional in the model).
func TestQuickLEStepNeverSlower(t *testing.T) {
	d := A100()
	spec := model.OPT1p3B()
	f := func(aRaw, mRaw uint8) bool {
		attn := 0.1 + 0.8*float64(aRaw)/255
		mlp := 0.1 + 0.8*float64(mRaw)/255
		dense := StepTotal(d, StepShape{Spec: spec, Batch: 4, Seq: 1024, Method: peft.LoRA})
		le := StepTotal(d, StepShape{
			Spec: spec, Batch: 4, Seq: 1024, Method: peft.LoRA,
			UseLongExposure: true, AttnDensity: attn, MLPDensity: mlp,
		})
		return le <= dense*1.02 // small tolerance for predictor overhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: speedup is monotone — lower densities never slow the modeled
// step down.
func TestQuickSpeedupMonotoneInDensity(t *testing.T) {
	d := A100()
	spec := model.OPT1p3B()
	f := func(raw uint8) bool {
		lo := 0.1 + 0.4*float64(raw)/255
		hi := lo + 0.3
		mk := func(density float64) float64 {
			return StepTotal(d, StepShape{
				Spec: spec, Batch: 4, Seq: 1024, Method: peft.LoRA,
				UseLongExposure: true, AttnDensity: density, MLPDensity: density,
			})
		}
		return mk(lo) <= mk(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
