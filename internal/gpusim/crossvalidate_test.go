package gpusim

import (
	"testing"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

// TestTrainableParamsMatchesRealPEFT cross-validates the cost model's
// analytic trainable-parameter counts against the real engine: build an
// actual model, apply each PEFT method, and compare the optimizer-visible
// count with gpusim's formula on the same configuration. This pins the
// modeled optimizer/memory numbers to the implementation.
func TestTrainableParamsMatchesRealPEFT(t *testing.T) {
	spec := model.Spec{Family: model.FamilyOPT, Config: nn.Config{
		Name: "xval", Vocab: 96, Dim: 32, Layers: 3, Heads: 4,
		Hidden: 128, MaxSeq: 64, Act: nn.ActReLU,
	}}
	opts := peft.Options{LoRARank: 4, Bottleneck: 8, PromptTokens: 6}

	for _, m := range []peft.Method{peft.LoRA, peft.Adapter, peft.PTuning} {
		rng := tensor.NewRNG(1)
		mod := nn.NewTransformer(spec.Config, rng)
		peft.Apply(mod, m, opts, rng.Split())
		_, real := mod.NumParams()

		modeled := TrainableParams(StepShape{
			Spec: spec, Method: m,
			LoRARank: opts.LoRARank, Bottleneck: opts.Bottleneck, PromptTokens: opts.PromptTokens,
		})
		if int64(real) != modeled {
			t.Errorf("%v: real %d vs modeled %d trainables", m, real, modeled)
		}
	}

	// FullFT: the analytic count uses Spec.ParamCount, which must match a
	// real model's total.
	rng := tensor.NewRNG(2)
	mod := nn.NewTransformer(spec.Config, rng)
	total, _ := mod.NumParams()
	if int64(total) != spec.ParamCount() {
		t.Errorf("ParamCount analytic %d vs real %d", spec.ParamCount(), total)
	}

	// BitFit's modeled count may differ slightly in the head-bias term;
	// require agreement within 2%.
	rng = tensor.NewRNG(3)
	mod = nn.NewTransformer(spec.Config, rng)
	peft.Apply(mod, peft.BitFit, opts, rng.Split())
	_, realBF := mod.NumParams()
	modeledBF := TrainableParams(StepShape{Spec: spec, Method: peft.BitFit})
	diff := float64(realBF) - float64(modeledBF)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(realBF) > 0.02 {
		t.Errorf("BitFit: real %d vs modeled %d (%.1f%% off)", realBF, modeledBF, 100*diff/float64(realBF))
	}
}
