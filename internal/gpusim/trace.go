package gpusim

import (
	"longexposure/internal/model"
	"longexposure/internal/peft"
)

// StepShape describes one fine-tuning step for trace construction: the
// model, batch geometry, PEFT method, and the sparsity the Long Exposure
// pipeline achieved (densities are *measured* on sim-scale runs and fed in
// here — gpusim never invents sparsity).
type StepShape struct {
	Spec   model.Spec
	Batch  int
	Seq    int
	Method peft.Method

	// PEFT module sizes.
	LoRARank     int
	Bottleneck   int
	PromptTokens int

	// Long Exposure knobs.
	UseLongExposure bool
	Blk             int
	// AttnDensity is active blocks / full S²-grid blocks, averaged over
	// heads (a causal-dense layout is ≈0.5; the dense baseline computes 1.0).
	AttnDensity float64
	// MLPDensity is the active-neuron fraction (1.0 for dense and for GeLU
	// models, which never run sparse MLPs).
	MLPDensity float64
	// PredictorRank is the low-rank width of the attention predictors.
	PredictorRank int
}

// withDefaults normalizes the shape.
func (s StepShape) withDefaults() StepShape {
	if s.LoRARank == 0 {
		s.LoRARank = 8
	}
	if s.Bottleneck == 0 {
		s.Bottleneck = 64
	}
	if s.PromptTokens == 0 {
		s.PromptTokens = 16
	}
	if s.Blk == 0 {
		s.Blk = 32
	}
	if s.AttnDensity == 0 {
		s.AttnDensity = 1
	}
	if s.MLPDensity == 0 {
		s.MLPDensity = 1
	}
	if !s.Spec.SupportsMLPSparsity() {
		s.MLPDensity = 1
	}
	if s.PredictorRank == 0 {
		s.PredictorRank = 16
	}
	if !s.UseLongExposure {
		s.AttnDensity = 1
		s.MLPDensity = 1
	}
	return s
}

// tokens returns B·S (prompt tokens included for P-Tuning).
func (s StepShape) tokens() float64 {
	seq := s.Seq
	if s.Method == peft.PTuning {
		seq += s.PromptTokens
	}
	return float64(s.Batch * seq)
}

const (
	bytesF16 = 2.0
	bytesF32 = 4.0
)

// gemm builds a dense-GEMM kernel for C[m,n] = A[m,k]·B[k,n] with fp16
// weights streaming (weightBytes) and fp32 activations.
func gemm(name string, m, k, n float64, kind KernelKind) Kernel {
	return Kernel{
		Name:     name,
		Kind:     kind,
		FLOPs:    2 * m * k * n,
		Bytes:    k*n*bytesF16 + (m*k+m*n)*bytesF32,
		Launches: 1,
	}
}

// ScoreKernels models one attention-score-shaped operation (Q·Kᵀ or P·V and
// their backward analogues) at the given block density and execution kind.
// Exposed for the Figure 9/12 per-operator experiments.
func ScoreKernels(name string, batch, heads, seq, headDim int, density float64, kind KernelKind) Kernel {
	bh := float64(batch * heads)
	s := float64(seq)
	hd := float64(headDim)
	return Kernel{
		Name:     name,
		Kind:     kind,
		FLOPs:    2 * bh * s * s * hd * density,
		Bytes:    bh * (2*s*hd*bytesF32 + s*s*bytesF32*density),
		Launches: 1,
	}
}

// MLPKernels models one FC-shaped operation at the given neuron density and
// kind. Exposed for the Figure 9/12 per-operator experiments.
func MLPKernels(name string, tokens, d, h int, density float64, kind KernelKind) Kernel {
	t, dd, hh := float64(tokens), float64(d), float64(h)
	return Kernel{
		Name:     name,
		Kind:     kind,
		FLOPs:    2 * t * dd * hh * density,
		Bytes:    dd*hh*bytesF16*density + t*dd*bytesF32 + t*hh*bytesF32*density,
		Launches: 1,
	}
}

// elementwise builds a streaming kernel over n fp32 elements with the given
// read+write multiplier.
func elementwise(name string, n, passes float64) Kernel {
	return Kernel{Name: name, Kind: KElementwise, FLOPs: 5 * n, Bytes: passes * n * bytesF32, Launches: 1}
}

// attnKind returns the execution kind of score-shaped kernels.
func (s StepShape) attnKind() KernelKind {
	if s.UseLongExposure {
		return KBlockSparse
	}
	return KDenseGEMM
}

// mlpKind returns the execution kind of FC-shaped kernels.
func (s StepShape) mlpKind() KernelKind {
	if s.UseLongExposure && s.MLPDensity < 1 {
		return KNeuronSparse
	}
	return KDenseGEMM
}

// ForwardTrace builds the forward-pass kernel list of one step.
func ForwardTrace(shape StepShape) Trace {
	s := shape.withDefaults()
	cfg := s.Spec.Config
	d := float64(cfg.Dim)
	h := float64(cfg.Hidden)
	v := float64(cfg.Vocab)
	t := s.tokens()
	hd := cfg.Dim / cfg.Heads
	seq := s.Seq
	if s.Method == peft.PTuning {
		seq += s.PromptTokens
	}

	var tr Trace
	// Embedding gather.
	tr = append(tr, Kernel{Name: "embed", Kind: KElementwise, Bytes: t * d * (bytesF16 + bytesF32), Launches: 2})

	for l := 0; l < cfg.Layers; l++ {
		tr = append(tr, elementwise("ln1", t*d, 3))
		tr = append(tr, gemm("qkv_proj", t, d, 3*d, KDenseGEMM))
		if s.Method == peft.LoRA {
			r := float64(s.LoRARank)
			tr = append(tr, gemm("lora_qv_down", t, d, 2*r, KDenseGEMM))
			tr = append(tr, gemm("lora_qv_up", t, 2*r, d, KDenseGEMM))
		}
		tr = append(tr, ScoreKernels("attn_scores", s.Batch, cfg.Heads, seq, hd, s.AttnDensity, s.attnKind()))
		tr = append(tr, elementwise("softmax", float64(s.Batch*cfg.Heads)*float64(seq)*float64(seq)*s.AttnDensity, 2))
		tr = append(tr, ScoreKernels("attn_ctx", s.Batch, cfg.Heads, seq, hd, s.AttnDensity, s.attnKind()))
		tr = append(tr, gemm("out_proj", t, d, d, KDenseGEMM))
		if s.Method == peft.Adapter {
			m := float64(s.Bottleneck)
			tr = append(tr, gemm("adapter_attn", t, d, 2*m, KDenseGEMM))
		}
		tr = append(tr, elementwise("residual1", t*d, 3))

		tr = append(tr, elementwise("ln2", t*d, 3))
		tr = append(tr, MLPKernels("mlp_fc1", int(t), cfg.Dim, cfg.Hidden, s.MLPDensity, s.mlpKind()))
		tr = append(tr, elementwise("activation", t*h*s.MLPDensity, 2))
		tr = append(tr, MLPKernels("mlp_fc2", int(t), cfg.Dim, cfg.Hidden, s.MLPDensity, s.mlpKind()))
		if s.Method == peft.Adapter {
			m := float64(s.Bottleneck)
			tr = append(tr, gemm("adapter_mlp", t, d, 2*m, KDenseGEMM))
		}
		tr = append(tr, elementwise("residual2", t*d, 3))
	}

	tr = append(tr, elementwise("ln_f", t*d, 3))
	tr = append(tr, gemm("lm_head", t, d, v, KDenseGEMM))
	tr = append(tr, elementwise("ce_loss", t*v, 2))
	return tr
}

// BackwardTrace builds the backward-pass kernel list. Frozen linears cost
// one GEMM (input gradient only); trainable linears cost two (input +
// weight gradients) — the §II-C computational-flow analysis made explicit.
func BackwardTrace(shape StepShape) Trace {
	s := shape.withDefaults()
	cfg := s.Spec.Config
	d := float64(cfg.Dim)
	v := float64(cfg.Vocab)
	h := float64(cfg.Hidden)
	t := s.tokens()
	hd := cfg.Dim / cfg.Heads
	seq := s.Seq
	if s.Method == peft.PTuning {
		seq += s.PromptTokens
	}
	full := s.Method == peft.FullFT

	// linGrad emits the backward kernels of a linear of shape [k→n].
	linGrad := func(tr Trace, name string, k, n float64, trainable bool) Trace {
		tr = append(tr, gemm(name+".dx", t, n, k, KDenseGEMM))
		if trainable {
			tr = append(tr, gemm(name+".dw", k, t, n, KDenseGEMM))
		}
		return tr
	}

	var tr Trace
	tr = append(tr, elementwise("ce_grad", t*v, 2))
	tr = linGrad(tr, "lm_head", d, v, full)
	tr = append(tr, elementwise("ln_f.bwd", t*d, 4))

	for l := 0; l < cfg.Layers; l++ {
		if s.Method == peft.Adapter {
			m := float64(s.Bottleneck)
			// Adapter backward: dx through both projections + their dW.
			tr = append(tr, gemm("adapter_mlp.dx", t, d, 2*m, KDenseGEMM))
			tr = append(tr, gemm("adapter_mlp.dw", d, t, 2*m, KDenseGEMM))
		}
		// MLP backward: hidden grad (fc2ᵀ), input grad (fc1ᵀ); weight
		// grads only under full fine-tuning. All density-scaled — inactive
		// neurons drop out of gradient computation (§II-D).
		tr = append(tr, MLPKernels("mlp_fc2.dh", int(t), cfg.Dim, cfg.Hidden, s.MLPDensity, s.mlpKind()))
		tr = append(tr, elementwise("activation.bwd", t*h*s.MLPDensity, 3))
		tr = append(tr, MLPKernels("mlp_fc1.dx", int(t), cfg.Dim, cfg.Hidden, s.MLPDensity, s.mlpKind()))
		if full {
			tr = append(tr, MLPKernels("mlp_fc1.dw", int(t), cfg.Dim, cfg.Hidden, s.MLPDensity, s.mlpKind()))
			tr = append(tr, MLPKernels("mlp_fc2.dw", int(t), cfg.Dim, cfg.Hidden, s.MLPDensity, s.mlpKind()))
		}
		tr = append(tr, elementwise("ln2.bwd", t*d, 4))

		if s.Method == peft.Adapter {
			m := float64(s.Bottleneck)
			tr = append(tr, gemm("adapter_attn.dx", t, d, 2*m, KDenseGEMM))
			tr = append(tr, gemm("adapter_attn.dw", d, t, 2*m, KDenseGEMM))
		}
		// Attention backward: dProbs (score-shaped), softmax backward,
		// dQ, dK, dV (score-shaped) — all density-scaled.
		tr = append(tr, ScoreKernels("attn_dprobs", s.Batch, cfg.Heads, seq, hd, s.AttnDensity, s.attnKind()))
		tr = append(tr, elementwise("softmax.bwd", float64(s.Batch*cfg.Heads)*float64(seq)*float64(seq)*s.AttnDensity, 3))
		tr = append(tr, ScoreKernels("attn_dq", s.Batch, cfg.Heads, seq, hd, s.AttnDensity, s.attnKind()))
		tr = append(tr, ScoreKernels("attn_dk", s.Batch, cfg.Heads, seq, hd, s.AttnDensity, s.attnKind()))
		tr = append(tr, ScoreKernels("attn_dv", s.Batch, cfg.Heads, seq, hd, s.AttnDensity, s.attnKind()))
		// Projections.
		tr = linGrad(tr, "out_proj", d, d, full)
		tr = linGrad(tr, "qkv_proj", d, 3*d, full)
		if s.Method == peft.LoRA {
			r := float64(s.LoRARank)
			tr = append(tr, gemm("lora.dx", t, d, 2*r, KDenseGEMM))
			tr = append(tr, gemm("lora.dA", d, t, 2*r, KDenseGEMM))
			tr = append(tr, gemm("lora.dB", 2*r, t, d, KDenseGEMM))
		}
		tr = append(tr, elementwise("ln1.bwd", t*d, 4))
	}

	if full {
		tr = append(tr, Kernel{Name: "embed.bwd", Kind: KElementwise, Bytes: t * d * 2 * bytesF32, Launches: 2})
	}
	return tr
}

// TrainableParams returns the scalar count the optimizer updates for a
// method on a model spec (analytic, matching internal/peft's injections).
func TrainableParams(s StepShape) int64 {
	sh := s.withDefaults()
	cfg := sh.Spec.Config
	d := int64(cfg.Dim)
	h := int64(cfg.Hidden)
	L := int64(cfg.Layers)
	switch sh.Method {
	case peft.FullFT:
		return sh.Spec.ParamCount()
	case peft.LoRA:
		return L * 2 * 2 * d * int64(sh.LoRARank) // q,v × (A + B)
	case peft.Adapter:
		m := int64(sh.Bottleneck)
		return L * 2 * (2*d*m + m + d)
	case peft.BitFit:
		// All bias/beta terms: qkv+o biases (4d), mlp biases (h + d),
		// layernorm betas (2d) per layer, plus final norm and head bias.
		return L*(4*d+h+d+2*d) + d + int64(cfg.Vocab)
	case peft.PTuning:
		return int64(sh.PromptTokens) * d
	default:
		return 0
	}
}

// OptimTrace prices the optimizer step: AdamW streams weights, gradients
// and both moments (read) and writes weights and moments back — pure
// memory-bound traffic over the trainable set.
func OptimTrace(shape StepShape) Trace {
	p := float64(TrainableParams(shape))
	launches := 1 + int(p/5e7)
	return Trace{{
		Name:     "adamw",
		Kind:     KElementwise,
		FLOPs:    12 * p,
		Bytes:    p * (4*bytesF32 + 3*bytesF32),
		Launches: launches,
	}}
}

// PredictTrace prices the sequence-oriented predictors of one step: per
// layer, per head, two pooled low-rank GEMMs plus the tiny score product;
// plus the MLP predictor GEMM. Small matrices → launch overhead matters,
// which is why the total stays O(s) (§V-C).
func PredictTrace(shape StepShape) Trace {
	s := shape.withDefaults()
	if !s.UseLongExposure {
		return nil
	}
	cfg := s.Spec.Config
	d := float64(cfg.Dim)
	t := s.tokens()
	seq := s.Seq
	if s.Method == peft.PTuning {
		seq += s.PromptTokens
	}
	nb := float64(seq / s.Blk)
	r := float64(s.PredictorRank)
	nblk := float64(cfg.Hidden / s.Blk)
	b := float64(s.Batch)

	var tr Trace
	for l := 0; l < cfg.Layers; l++ {
		// Down-sampling (block mean-pool): one streaming pass.
		tr = append(tr, Kernel{Name: "pred.pool", Kind: KElementwise, Bytes: t * d * bytesF32, FLOPs: t * d, Launches: 1})
		// Per-head Q̂/K̂ projections and score product, batched into a few
		// launches per layer.
		heads := float64(cfg.Heads)
		tr = append(tr, Kernel{
			Name:     "pred.attn",
			Kind:     KPredictor,
			FLOPs:    heads * b * (2*nb*d*r*2 + 2*nb*nb*r),
			Bytes:    heads * (2*d*r*bytesF32 + b*nb*nb*bytesF32),
			Launches: 3,
		})
		if s.Spec.SupportsMLPSparsity() {
			tr = append(tr, Kernel{
				Name:     "pred.mlp",
				Kind:     KPredictor,
				FLOPs:    2 * t * d * nblk,
				Bytes:    d*nblk*bytesF32 + t*(d+nblk)*bytesF32,
				Launches: 2,
			})
		}
	}
	return tr
}

// StepTimes prices one full fine-tuning step on a device, phase by phase.
func StepTimes(d Device, s StepShape) (forward, backward, optim, predict float64) {
	forward = ForwardTrace(s).Time(d).Seconds()
	backward = BackwardTrace(s).Time(d).Seconds()
	optim = OptimTrace(s).Time(d).Seconds()
	predict = PredictTrace(s).Time(d).Seconds()
	return
}

// StepTotal returns the summed step time in seconds.
func StepTotal(d Device, s StepShape) float64 {
	f, b, o, p := StepTimes(d, s)
	return f + b + o + p
}
