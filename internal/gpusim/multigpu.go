package gpusim

import "time"

// Multi-GPU model (Figure 14): synchronous data parallelism with a ring
// all-reduce over the trainable gradients. Long Exposure's optimizations
// are all compute-side, so they add no communication — which is why the
// paper observes linear strong scaling.

// AllReduceTime prices a ring all-reduce of n bytes across g GPUs:
// 2·(g−1)/g · n / linkBW plus a per-hop latency term.
func AllReduceTime(d Device, bytes int64, gpus int) time.Duration {
	if gpus <= 1 {
		return 0
	}
	vol := 2 * float64(gpus-1) / float64(gpus) * float64(bytes)
	t := vol / d.LinkBW
	latency := time.Duration(2*(gpus-1)) * 10 * time.Microsecond
	return time.Duration(t*float64(time.Second)) + latency
}

// DataParallelStep prices one synchronous data-parallel step with the
// global batch sharded across gpus (strong scaling: per-GPU batch shrinks).
// Returns the per-step wall-clock.
func DataParallelStep(d Device, s StepShape, gpus int) time.Duration {
	shard := s
	shard.Batch = s.Batch / gpus
	if shard.Batch < 1 {
		shard.Batch = 1
	}
	compute := StepTotal(d, shard)
	gradBytes := 2 * TrainableParams(s) // fp16 gradients on the wire
	comm := AllReduceTime(d, gradBytes, gpus)
	return time.Duration(compute*float64(time.Second)) + comm
}

// ScalingEfficiency returns t(1)/(g·t(g)) — 1.0 is perfect strong scaling.
func ScalingEfficiency(d Device, s StepShape, gpus int) float64 {
	t1 := DataParallelStep(d, s, 1).Seconds()
	tg := DataParallelStep(d, s, gpus).Seconds()
	if tg == 0 {
		return 0
	}
	return t1 / (float64(gpus) * tg)
}
