package gpusim

import (
	"testing"

	"longexposure/internal/model"
	"longexposure/internal/peft"
)

func leShape(spec model.Spec, batch, seq int, method peft.Method) StepShape {
	return StepShape{
		Spec: spec, Batch: batch, Seq: seq, Method: method,
		UseLongExposure: true,
		AttnDensity:     0.22, // measured-range densities (Fig 9)
		MLPDensity:      0.35,
	}
}

func denseShape(spec model.Spec, batch, seq int, method peft.Method) StepShape {
	return StepShape{Spec: spec, Batch: batch, Seq: seq, Method: method}
}

func TestRooflineBasics(t *testing.T) {
	d := A100()
	// A compute-bound kernel's time scales with FLOPs.
	k1 := Kernel{Kind: KDenseGEMM, FLOPs: 1e12, Bytes: 1e6}
	k2 := Kernel{Kind: KDenseGEMM, FLOPs: 2e12, Bytes: 1e6}
	t1, t2 := d.Time(k1), d.Time(k2)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("compute scaling ratio %v", ratio)
	}
	// A memory-bound kernel's time scales with bytes.
	k3 := Kernel{Kind: KElementwise, FLOPs: 1, Bytes: 1e9}
	k4 := Kernel{Kind: KElementwise, FLOPs: 1, Bytes: 2e9}
	ratio = float64(d.Time(k4)) / float64(d.Time(k3))
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("memory scaling ratio %v", ratio)
	}
}

func TestKernelOverheadFloor(t *testing.T) {
	d := A100()
	tiny := Kernel{Kind: KDenseGEMM, FLOPs: 10, Bytes: 10, Launches: 5}
	if got := d.Time(tiny); got < 5*d.KernelOverhead {
		t.Fatalf("launch overhead not charged: %v", got)
	}
}

func TestUnstructuredSlowerThanDenseAtModestSparsity(t *testing.T) {
	// Fig 9's 'Shadowy' finding: unstructured sparsity at ~50% density
	// loses to the dense kernel.
	d := A100()
	dense := ScoreKernels("s", 4, 32, 1024, 64, 1.0, KDenseGEMM)
	shadow := ScoreKernels("s", 4, 32, 1024, 64, 0.5, KUnstructured)
	if d.Time(shadow) <= d.Time(dense) {
		t.Fatalf("unstructured %v not slower than dense %v", d.Time(shadow), d.Time(dense))
	}
	// But the block-sparse kernel at the same density wins.
	blockSparse := ScoreKernels("s", 4, 32, 1024, 64, 0.5, KBlockSparse)
	if d.Time(blockSparse) >= d.Time(dense) {
		t.Fatalf("block-sparse %v not faster than dense %v", d.Time(blockSparse), d.Time(dense))
	}
}

func TestOperatorTimeLinearInDensity(t *testing.T) {
	// Fig 12: dynamic operator time ≈ linear in sparsity ratio.
	d := A100()
	t25 := d.Time(ScoreKernels("s", 4, 32, 1024, 64, 0.25, KBlockSparse)).Seconds()
	t50 := d.Time(ScoreKernels("s", 4, 32, 1024, 64, 0.50, KBlockSparse)).Seconds()
	t100 := d.Time(ScoreKernels("s", 4, 32, 1024, 64, 1.0, KBlockSparse)).Seconds()
	if r := t50 / t25; r < 1.6 || r > 2.4 {
		t.Fatalf("density 0.5/0.25 time ratio %v", r)
	}
	if r := t100 / t50; r < 1.6 || r > 2.4 {
		t.Fatalf("density 1.0/0.5 time ratio %v", r)
	}
}

func TestTableIShape(t *testing.T) {
	// Table I's structure: backward > forward for every method; the
	// optimizer step is a large share for full fine-tuning and negligible
	// for PEFT.
	d := A100()
	spec := model.OPT1p3B()
	for _, m := range peft.AllMethods() {
		f, b, o, _ := StepTimes(d, denseShape(spec, 4, 512, m))
		if b <= f {
			t.Errorf("%v: backward %.4f ≤ forward %.4f", m, b, f)
		}
		share := o / (f + b + o)
		if m == peft.FullFT && share < 0.05 {
			t.Errorf("FullFT optimizer share %.3f too small", share)
		}
		if m != peft.FullFT && share > 0.02 {
			t.Errorf("%v optimizer share %.3f too large", m, share)
		}
	}
}

func TestSpeedupGrowsWithSequenceLength(t *testing.T) {
	// Fig 7's headline: the 512→1024 speedup jump (O(s²) → O(s)).
	d := A100()
	spec := model.OPT1p3B()
	speedup := func(seq int) float64 {
		dense := StepTotal(d, denseShape(spec, 4, seq, peft.LoRA))
		le := StepTotal(d, leShape(spec, 4, seq, peft.LoRA))
		return dense / le
	}
	s512, s1024 := speedup(512), speedup(1024)
	if s512 <= 1 {
		t.Fatalf("no speedup at 512: %v", s512)
	}
	if s1024 <= s512 {
		t.Fatalf("speedup did not grow with seq: %.2f → %.2f", s512, s1024)
	}
	if s1024 < 1.3 || s1024 > 5 {
		t.Fatalf("seq-1024 speedup %.2f outside plausible band", s1024)
	}
}

func TestGPT2AttentionOnlySpeedupSmaller(t *testing.T) {
	// Fig 13: GeLU models only get attention optimizations, so the speedup
	// is positive but smaller than OPT's.
	d := A100()
	gpt := model.GPT2Large()
	opt := model.OPT1p3B()
	sp := func(spec model.Spec) float64 {
		return StepTotal(d, denseShape(spec, 4, 1024, peft.LoRA)) /
			StepTotal(d, leShape(spec, 4, 1024, peft.LoRA))
	}
	g, o := sp(gpt), sp(opt)
	if g <= 1 {
		t.Fatalf("GPT-2 got no speedup: %v", g)
	}
	if g >= o {
		t.Fatalf("GPT-2 speedup %.2f not smaller than OPT %.2f", g, o)
	}
}

func TestPredictorOverheadSmall(t *testing.T) {
	// §V-C: predictor overhead must be a small fraction of the step.
	d := A100()
	s := leShape(model.OPT1p3B(), 4, 1024, peft.LoRA)
	f, b, o, p := StepTimes(d, s)
	if p <= 0 {
		t.Fatal("no predictor time under Long Exposure")
	}
	if share := p / (f + b + o + p); share > 0.1 {
		t.Fatalf("predictor share %.3f too large", share)
	}
	// Dense runs have no predictor.
	if pt := PredictTrace(denseShape(model.OPT1p3B(), 4, 1024, peft.LoRA)); pt != nil {
		t.Fatal("dense shape produced a predictor trace")
	}
}

func TestTrainableParamCounts(t *testing.T) {
	spec := model.OPT1p3B()
	total := spec.ParamCount()
	lora := TrainableParams(StepShape{Spec: spec, Method: peft.LoRA, LoRARank: 8})
	if ratio := float64(lora) / float64(total); ratio > 0.01 {
		t.Fatalf("LoRA trainable ratio %.4f too large", ratio)
	}
	full := TrainableParams(StepShape{Spec: spec, Method: peft.FullFT})
	if full != total {
		t.Fatalf("FullFT trainable %d != total %d", full, total)
	}
	bitfit := TrainableParams(StepShape{Spec: spec, Method: peft.BitFit})
	if bitfit <= 0 || bitfit >= lora*100 {
		t.Fatalf("BitFit count %d implausible", bitfit)
	}
}

func TestMemoryFootprintShapes(t *testing.T) {
	spec := model.OPT1p3B()
	// Dense activations grow ~quadratically with seq; Long Exposure's grow
	// much slower (Fig 8).
	dense512 := Footprint(denseShape(spec, 4, 512, peft.LoRA), false)
	dense2048 := Footprint(denseShape(spec, 4, 2048, peft.LoRA), false)
	le2048 := Footprint(leShape(spec, 4, 2048, peft.LoRA), false)

	dGrowth := float64(dense2048.Activations) / float64(dense512.Activations)
	if dGrowth < 6 {
		t.Fatalf("dense activation growth 512→2048 = %.1f, want ≳ quadratic-ish", dGrowth)
	}
	if le2048.Total() >= dense2048.Total() {
		t.Fatal("Long Exposure uses no less memory")
	}
	reduction := float64(dense2048.Total()) / float64(le2048.Total())
	if reduction < 1.2 || reduction > 6 {
		t.Fatalf("memory reduction %.2f outside plausible band", reduction)
	}

	// Optimal mode (MLP offload) saves further parameter memory.
	leOpt := Footprint(leShape(spec, 4, 2048, peft.LoRA), true)
	if leOpt.Params >= le2048.Params {
		t.Fatal("offload did not shrink resident parameters")
	}

	// FullFT optimizer state dwarfs LoRA's.
	fullState := Footprint(denseShape(spec, 4, 512, peft.FullFT), false).OptState
	loraState := Footprint(denseShape(spec, 4, 512, peft.LoRA), false).OptState
	if fullState < 100*loraState {
		t.Fatalf("FullFT state %d not ≫ LoRA state %d", fullState, loraState)
	}
}

func TestOOMAtLongSequences(t *testing.T) {
	// Fig 7/8 OOM cells: dense fine-tuning of OPT-2.7B at long sequences
	// must not fit the 48GB A6000 while Long Exposure fits more cases.
	spec := model.OPT2p7B()
	dev := A6000()
	dense := Footprint(denseShape(spec, 4, 2048, peft.LoRA), false)
	if FitsOn(dev, dense) {
		t.Fatalf("dense OPT-2.7B@2048 fits 48GB (%.1f GiB) — OOM cell missing", GiB(dense.Total()))
	}
	le := Footprint(leShape(spec, 4, 2048, peft.LoRA), true)
	if GiB(le.Total()) >= GiB(dense.Total()) {
		t.Fatal("LE footprint not smaller")
	}
}

func TestMultiGPUNearLinearScaling(t *testing.T) {
	// Fig 14: PEFT gradients are tiny, so strong scaling is near linear.
	d := A100()
	s := denseShape(model.OPT350M(), 8, 512, peft.LoRA)
	for _, g := range []int{2, 4} {
		eff := ScalingEfficiency(d, s, g)
		if eff < 0.8 || eff > 1.05 {
			t.Fatalf("%d GPUs: efficiency %.3f", g, eff)
		}
	}
	// Full fine-tuning over PCIe scales worse than LoRA over PCIe.
	pcie := A6000()
	effFull := ScalingEfficiency(pcie, denseShape(model.OPT350M(), 8, 512, peft.FullFT), 4)
	effLoRA := ScalingEfficiency(pcie, denseShape(model.OPT350M(), 8, 512, peft.LoRA), 4)
	if effFull >= effLoRA {
		t.Fatalf("FullFT scaling %.3f not worse than LoRA %.3f on PCIe", effFull, effLoRA)
	}
}

func TestAllReduceModel(t *testing.T) {
	d := A100()
	if AllReduceTime(d, 1<<30, 1) != 0 {
		t.Fatal("single GPU should not communicate")
	}
	t2 := AllReduceTime(d, 1<<30, 2)
	t4 := AllReduceTime(d, 1<<30, 4)
	if t2 <= 0 || t4 <= t2 {
		t.Fatalf("all-reduce times not increasing: %v, %v", t2, t4)
	}
}

func TestA6000SlowerThanA100ForBandwidthBound(t *testing.T) {
	// The A6000 has ~half the HBM bandwidth; memory-bound phases must be
	// slower there.
	k := Kernel{Kind: KElementwise, Bytes: 1e9}
	if A6000().Time(k) <= A100().Time(k) {
		t.Fatal("A6000 not slower on memory-bound work")
	}
}

func TestGeLUForcesDenseMLP(t *testing.T) {
	s := StepShape{Spec: model.GPT2Large(), Batch: 4, Seq: 512, Method: peft.LoRA,
		UseLongExposure: true, AttnDensity: 0.3, MLPDensity: 0.2}
	if got := s.withDefaults().MLPDensity; got != 1 {
		t.Fatalf("GeLU model MLP density forced to %v, want 1", got)
	}
}
