module longexposure

go 1.24
